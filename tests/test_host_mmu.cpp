#include <gtest/gtest.h>

#include "helpers.hpp"
#include "interconnect/network.hpp"
#include "mmu/host_mmu.hpp"

using namespace transfw;

namespace {

struct HostHarness
{
    cfg::SystemConfig config;
    sim::EventQueue eq;
    sim::Rng rng{1};
    mem::PageTable central;
    ic::Network net;
    std::vector<std::unique_ptr<test::FakeGpu>> gpus;
    std::unique_ptr<core::FtCluster> ft;
    std::unique_ptr<uvm::MigrationEngine> engine;
    std::unique_ptr<mmu::HostMmu> host;

    std::vector<mmu::XlatPtr> resolved;
    std::vector<mmu::RemoteLookupPtr> forwarded;

    explicit HostHarness(cfg::SystemConfig c = {})
        : config(std::move(c)), central(config.geometry()),
          net(eq, config.numGpus, config.hostLink, config.peerLink)
    {
        std::vector<mmu::GpuIface *> ifaces;
        for (int g = 0; g < config.numGpus; ++g) {
            gpus.push_back(std::make_unique<test::FakeGpu>(config, g));
            ifaces.push_back(gpus.back().get());
        }
        if (config.transFw.enabled)
            ft = std::make_unique<core::FtCluster>(config.transFw);
        engine = std::make_unique<uvm::MigrationEngine>(
            eq, config, central, ifaces, net, ft.get());
        host = std::make_unique<mmu::HostMmu>(
            eq, config, central, *engine,
            ft ? &ft->table(0) : nullptr, ifaces, rng);
        host->onResolved = [this](mmu::XlatPtr r) {
            resolved.push_back(std::move(r));
        };
        host->forwardToGpu = [this](mmu::RemoteLookupPtr rl) {
            forwarded.push_back(std::move(rl));
        };
    }

    void
    placeAt(mem::Vpn vpn, int owner)
    {
        mem::Ppn ppn =
            gpus[static_cast<std::size_t>(owner)]->frames().allocate();
        gpus[static_cast<std::size_t>(owner)]->localPageTable().map(
            vpn, mem::PageInfo{ppn, owner, 1u << owner, true, false});
        central.map(vpn,
                    mem::PageInfo{ppn, owner, 1u << owner, true, false});
        if (ft)
            ft->pageArrived(vpn, owner);
    }
};

} // namespace

TEST(HostMmu, ResolvesFaultViaWalkAndMigration)
{
    HostHarness h;
    h.placeAt(0x10, 1);
    h.host->handleFault(test::makeReq(0x10, /*gpu=*/0));
    h.eq.run();
    ASSERT_EQ(h.resolved.size(), 1u);
    EXPECT_EQ(h.resolved[0]->result.owner, 0);
    EXPECT_EQ(h.host->stats().walks, 1u);
    EXPECT_EQ(h.central.lookup(0x10)->owner, 0);
}

TEST(HostMmu, TlbHitSkipsWalk)
{
    HostHarness h;
    h.placeAt(0x20, 1);
    h.host->handleFault(test::makeReq(0x20, 0));
    h.eq.run();
    EXPECT_EQ(h.host->stats().walks, 1u);
    // The migration invalidated the host TLB entry, so a second fault
    // from another GPU walks again...
    h.host->handleFault(test::makeReq(0x20, 2));
    h.eq.run();
    EXPECT_EQ(h.host->stats().walks, 2u);
    // ...but a third fault right after hits the TLB entry just filled.
    h.host->handleFault(test::makeReq(0x20, 3));
    h.eq.run();
    EXPECT_EQ(h.host->stats().walks, 3u); // still walks: migration again
    EXPECT_GE(h.host->stats().tlbHits, 0u);
}

TEST(HostMmu, QueueBuildsWhenWalkersBusy)
{
    cfg::SystemConfig config;
    config.hostWalkers = 1;
    HostHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 8; ++vpn)
        h.placeAt((vpn + 1) << 21, 1);
    for (mem::Vpn vpn = 0; vpn < 8; ++vpn)
        h.host->handleFault(test::makeReq((vpn + 1) << 21, 0));
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 8u);
    EXPECT_GT(h.host->stats().queueWait.maximum(), 0.0);
    EXPECT_GT(h.host->stats().maxQueueDepth, 1u);
}

TEST(HostMmu, ForwardsWhenCongestedAndFtHits)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    config.hostWalkers = 1;
    config.transFw.forwardThreshold = 0.0; // forward on any queueing
    HostHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 6; ++vpn)
        h.placeAt((vpn + 1) << 21, 1);
    for (mem::Vpn vpn = 0; vpn < 6; ++vpn)
        h.host->handleFault(test::makeReq((vpn + 1) << 21, 0));
    h.eq.run();
    EXPECT_GT(h.host->stats().forwards, 0u);
    EXPECT_EQ(h.forwarded.size(), h.host->stats().forwards);
    for (const auto &rl : h.forwarded)
        EXPECT_EQ(rl->targetGpu, 1);
}

TEST(HostMmu, NoForwardBelowThreshold)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true; // default threshold 0.5 x 16 = 8
    HostHarness h(config);
    h.placeAt(0x30 << 9, 1);
    h.host->handleFault(test::makeReq(0x30 << 9, 0));
    h.eq.run();
    EXPECT_EQ(h.host->stats().forwards, 0u);
}

TEST(HostMmu, RemoteSuccessCancelsQueuedWalk)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    config.hostWalkers = 1;
    config.transFw.forwardThreshold = 0.0;
    HostHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 4; ++vpn)
        h.placeAt((vpn + 1) << 21, 1);
    for (mem::Vpn vpn = 0; vpn < 4; ++vpn)
        h.host->handleFault(test::makeReq((vpn + 1) << 21, 0));
    // Drain until forwards exist, then answer one of them successfully.
    h.eq.run(10); // process admissions
    if (!h.forwarded.empty()) {
        mmu::RemoteLookupPtr rl = h.forwarded.front();
        rl->success = true;
        rl->result = tlb::TlbEntry{1, 1, true, false};
        h.host->remoteLookupDone(rl);
    }
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 4u);
    EXPECT_GE(h.host->stats().forwardSuccess + h.host->stats().forwardFail +
                  h.forwarded.size(),
              h.host->stats().forwards);
}

TEST(HostMmu, FailedRemoteLookupFallsBackToWalk)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    config.hostWalkers = 1;
    config.transFw.forwardThreshold = 0.0;
    HostHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 4; ++vpn)
        h.placeAt((vpn + 1) << 21, 1);
    for (mem::Vpn vpn = 0; vpn < 4; ++vpn)
        h.host->handleFault(test::makeReq((vpn + 1) << 21, 0));
    h.eq.run(10);
    std::size_t forwards = h.forwarded.size();
    for (auto &rl : h.forwarded) {
        rl->success = false;
        h.host->remoteLookupDone(rl);
    }
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 4u);
    EXPECT_EQ(h.host->stats().forwardFail, forwards);
}

TEST(HostMmu, RemoteProbeCharacterizationRecorded)
{
    HostHarness h;
    h.placeAt(0x40, 1);
    // Warm the owner's GMMU PW-cache so the probe finds a prefix.
    h.gpus[1]->pwc().fill(0x40, 2);
    h.host->handleFault(test::makeReq(0x40, 0));
    h.eq.run();
    EXPECT_EQ(h.host->stats().remoteProbeLevels.bucket(2), 1u);
}

TEST(HostMmu, InfiniteWalkerOracle)
{
    cfg::SystemConfig config;
    config.oracle.infiniteWalkers = true;
    config.hostWalkers = 1;
    HostHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 8; ++vpn) {
        h.placeAt((vpn + 1) << 21, 1);
        h.host->handleFault(test::makeReq((vpn + 1) << 21, 0));
    }
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 8u);
    EXPECT_EQ(h.host->stats().queueWait.count(), 0u);
}
