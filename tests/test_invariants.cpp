#include <gtest/gtest.h>

#include <unordered_map>

#include "transfw/transfw.hpp"

using namespace transfw;

/**
 * End-to-end state invariants checked on the final machine state after
 * a full Trans-FW run: the PRT, FT, local page tables and the central
 * page table must agree — migrations may not leave any of them stale.
 */
namespace {

wl::SyntheticSpec
churnSpec()
{
    wl::SyntheticSpec spec;
    spec.name = "invariants";
    spec.numCtas = 64;
    spec.memOpsPerCta = 40;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 64, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.4, .reuse = 2},
        {.name = "own", .pages = 256, .weight = 0.5, .reuse = 2},
    };
    return spec;
}

} // namespace

TEST(StateInvariants, TablesConsistentAfterTransFwRun)
{
    wl::SyntheticWorkload workload(churnSpec());
    cfg::SystemConfig config = sys::transFwConfig();
    config.cusPerGpu = 8;

    sys::MultiGpuSystem system(config, workload);
    sys::SimResults r = system.run();
    EXPECT_GT(r.migrations, 0u); // the run must actually churn pages

    mem::PageTable &central = system.centralPageTable();
    core::ForwardingTable *ft = system.forwardingTable();
    ASSERT_NE(ft, nullptr);

    std::uint64_t local_pages_total = 0;
    for (int g = 0; g < config.numGpus; ++g) {
        gpu::Gpu &gpu = system.gpuAt(g);
        core::PendingRequestTable *prt = gpu.prt();
        ASSERT_NE(prt, nullptr);

        gpu.localPageTable().forEachMapped(
            [&](mem::Vpn vpn, const mem::PageInfo &info) {
                ++local_pages_total;
                // Every locally mapped page must be PRT-visible (no
                // false negatives barring filter overflow).
                if (prt->overflowEvictions() == 0) {
                    EXPECT_TRUE(prt->mayBeLocal(vpn))
                        << "gpu" << g << " vpn " << vpn;
                }
                if (!info.remote) {
                    // The central table must agree on ownership.
                    const mem::PageInfo *c = central.lookup(vpn);
                    ASSERT_NE(c, nullptr);
                    EXPECT_TRUE(c->owner == g ||
                                ((c->replicaMask >> g) & 1u))
                        << "gpu" << g << " vpn " << vpn;
                    // And the FT must know some GPU can serve it
                    // (exclude_gpu = -1: no requester excluded).
                    if (ft->overflowEvictions() == 0) {
                        auto owner =
                            ft->findOwner(vpn, config.numGpus, -1);
                        EXPECT_TRUE(owner.has_value())
                            << "gpu" << g << " vpn " << vpn;
                    }
                }
            });
    }
    EXPECT_GT(local_pages_total, 0u);

    // Central ownership must point at real local mappings.
    central.forEachMapped([&](mem::Vpn vpn, const mem::PageInfo &info) {
        if (info.owner == mem::kCpuDevice)
            return;
        const mem::PageInfo *local =
            system.gpuAt(info.owner).localPageTable().lookup(vpn);
        ASSERT_NE(local, nullptr) << "vpn " << vpn;
        EXPECT_EQ(local->ppn, info.ppn) << "vpn " << vpn;
        EXPECT_FALSE(local->remote) << "vpn " << vpn;
    });
}

TEST(StateInvariants, FrameAccountingMatchesMappings)
{
    wl::SyntheticWorkload workload(churnSpec());
    cfg::SystemConfig config = sys::baselineConfig();
    config.cusPerGpu = 8;
    sys::MultiGpuSystem system(config, workload);
    system.run();

    for (int g = 0; g < config.numGpus; ++g) {
        std::uint64_t mapped_local = 0;
        system.gpuAt(g).localPageTable().forEachMapped(
            [&](mem::Vpn, const mem::PageInfo &info) {
                if (!info.remote)
                    ++mapped_local;
            });
        EXPECT_EQ(system.gpuAt(g).frames().allocated(), mapped_local)
            << "gpu" << g;
    }
}

TEST(PageTableIteration, ForEachMappedVisitsExactly)
{
    mem::PageTable pt(mem::PagingGeometry{5, mem::kSmallPageShift});
    std::unordered_map<mem::Vpn, mem::Ppn> expected;
    for (mem::Vpn vpn = 0; vpn < 500; ++vpn) {
        mem::Vpn key = vpn * 7919;
        expected[key] = vpn;
        pt.map(key, mem::PageInfo{vpn, 0, 1, true, false});
    }
    std::size_t visited = 0;
    pt.forEachMapped([&](mem::Vpn vpn, const mem::PageInfo &info) {
        ++visited;
        auto it = expected.find(vpn);
        ASSERT_NE(it, expected.end()) << vpn;
        EXPECT_EQ(info.ppn, it->second);
    });
    EXPECT_EQ(visited, expected.size());
}
