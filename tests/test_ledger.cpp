/**
 * Cross-run observability: the run ledger (JSONL round-trip, concurrent
 * append), noise-aware diffing (drift, missing keys, schema mismatch,
 * match-by-key pairing, wall tolerance), the host-side self-profiler
 * (bucket-sum sanity, off-by-default cost), and the sweep/job-count
 * integration.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "sim/task_pool.hpp"
#include "system/report.hpp"
#include "system/sweep.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

constexpr double kScale = 0.05;

std::string
tempPath(const char *name)
{
    std::string path = std::string("/tmp/transfw_test_") + name;
    std::remove(path.c_str());
    return path;
}

obs::LedgerRecord
sampleRecord(const std::string &app = "MT", double metric = 123.0)
{
    obs::LedgerRecord r;
    r.schema = obs::RunLedger::kSchema;
    r.app = app;
    r.scale = 0.25;
    r.configKey = "cfg:deadbeef";
    r.configSummary = "4 GPUs, baseline";
    r.source = "test";
    r.metrics["exec.time"] = metric;
    r.metrics["exec.faults"] = 42.0;
    r.metrics["xlat.p99"] = 1234.5678901234567;
    r.wall["wall_seconds"] = 1.5;
    r.wall["events_per_sec"] = 2.0e6;
    r.wallTimestamp = "2026-01-01T00:00:00Z";
    return r;
}

} // namespace

TEST(Ledger, JsonLineRoundTrip)
{
    obs::LedgerRecord in = sampleRecord();
    in.metrics["awkward \"quoted\"\\key"] = -0.0625;
    std::string line = in.toJsonLine();
    EXPECT_EQ(line.find('\n'), std::string::npos);

    obs::LedgerRecord out;
    std::string error;
    ASSERT_TRUE(obs::RunLedger::parseLine(line, out, &error)) << error;
    EXPECT_EQ(out.schema, in.schema);
    EXPECT_EQ(out.app, in.app);
    EXPECT_EQ(out.scale, in.scale);
    EXPECT_EQ(out.configKey, in.configKey);
    EXPECT_EQ(out.configSummary, in.configSummary);
    EXPECT_EQ(out.source, in.source);
    EXPECT_EQ(out.metrics, in.metrics);
    EXPECT_EQ(out.wall, in.wall);
    EXPECT_EQ(out.wallTimestamp, in.wallTimestamp);

    // The deterministic serialization is itself stable.
    EXPECT_EQ(out.toJsonLine(), line);
}

TEST(Ledger, ParseLineRejectsGarbageAndWrongSchema)
{
    obs::LedgerRecord out;
    std::string error;
    EXPECT_FALSE(obs::RunLedger::parseLine("not json", out, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(obs::RunLedger::parseLine(
        "{\"schema\":\"other-v9\",\"app\":\"MT\"}", out, &error));

    obs::LedgerRecord in = sampleRecord();
    in.schema = "transfw-ledger-v0";
    EXPECT_FALSE(obs::RunLedger::parseLine(in.toJsonLine(), out, &error));
}

TEST(Ledger, LoadSkipsMalformedLinesAndReportsThem)
{
    std::string path = tempPath("ledger_malformed.jsonl");
    ASSERT_TRUE(obs::RunLedger::append(path, sampleRecord("MT")));
    {
        std::FILE *f = std::fopen(path.c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs("garbage line\n", f);
        std::fclose(f);
    }
    ASSERT_TRUE(obs::RunLedger::append(path, sampleRecord("KM")));

    std::vector<std::string> errors;
    std::vector<obs::LedgerRecord> records =
        obs::RunLedger::load(path, &errors);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].app, "MT");
    EXPECT_EQ(records[1].app, "KM");
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("line 2"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Ledger, MissingFileIsAnError)
{
    std::vector<std::string> errors;
    std::vector<obs::LedgerRecord> records =
        obs::RunLedger::load("/tmp/transfw_test_no_such_ledger.jsonl",
                             &errors);
    EXPECT_TRUE(records.empty());
    EXPECT_FALSE(errors.empty());
}

TEST(Ledger, ConcurrentAppendsNeverInterleaveBytes)
{
    std::string path = tempPath("ledger_concurrent.jsonl");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 25;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t)
        writers.emplace_back([&path, t] {
            for (int i = 0; i < kPerThread; ++i) {
                obs::LedgerRecord r = sampleRecord(
                    "T" + std::to_string(t), static_cast<double>(i));
                ASSERT_TRUE(obs::RunLedger::append(path, r));
            }
        });
    for (std::thread &w : writers)
        w.join();

    std::vector<std::string> errors;
    std::vector<obs::LedgerRecord> records =
        obs::RunLedger::load(path, &errors);
    EXPECT_TRUE(errors.empty());
    EXPECT_EQ(records.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    std::remove(path.c_str());
}

TEST(LedgerDiff, IdenticalSetsAreClean)
{
    std::vector<obs::LedgerRecord> a = {sampleRecord("MT"),
                                        sampleRecord("KM")};
    obs::LedgerDiff diff = obs::diffLedgers(a, a);
    EXPECT_TRUE(diff.clean());
    EXPECT_TRUE(diff.pairs.empty()); // only differing pairs are stored
    EXPECT_GT(diff.comparedMetrics, 0u);
    EXPECT_NE(diff.toMarkdown().find("CLEAN"), std::string::npos);
}

TEST(LedgerDiff, DetectsDriftedMetric)
{
    std::vector<obs::LedgerRecord> a = {sampleRecord("MT", 100.0)};
    std::vector<obs::LedgerRecord> b = {sampleRecord("MT", 101.0)};
    obs::LedgerDiff diff = obs::diffLedgers(a, b);
    EXPECT_FALSE(diff.clean());
    EXPECT_EQ(diff.driftedMetrics, 1u);
    ASSERT_EQ(diff.pairs.size(), 1u);
    ASSERT_EQ(diff.pairs[0].drifted.size(), 1u);
    EXPECT_NE(diff.pairs[0].drifted[0].find("exec.time"),
              std::string::npos);
    EXPECT_NE(diff.toMarkdown().find("DRIFT"), std::string::npos);
}

TEST(LedgerDiff, DetectsMissingKeys)
{
    std::vector<obs::LedgerRecord> a = {sampleRecord("MT")};
    std::vector<obs::LedgerRecord> b = {sampleRecord("MT")};
    b[0].metrics.erase("exec.faults");
    b[0].metrics["metrics.newKey"] = 7.0;
    obs::LedgerDiff diff = obs::diffLedgers(a, b);
    EXPECT_FALSE(diff.clean());
    EXPECT_EQ(diff.missingKeys, 2u);
    EXPECT_EQ(diff.driftedMetrics, 0u);
}

TEST(LedgerDiff, SchemaMismatchIsAnError)
{
    std::vector<obs::LedgerRecord> a = {sampleRecord("MT")};
    std::vector<obs::LedgerRecord> b = {sampleRecord("MT")};
    b[0].schema = "transfw-ledger-v999";
    obs::LedgerDiff diff = obs::diffLedgers(a, b);
    EXPECT_FALSE(diff.clean());
    EXPECT_FALSE(diff.errors.empty());
}

TEST(LedgerDiff, MatchesByConfigKeyAcrossOrderAndDuplicates)
{
    // B holds the same runs in a different order, plus a stale older
    // record for MT (newest wins) and one extra unmatched config.
    std::vector<obs::LedgerRecord> a = {sampleRecord("MT", 100.0),
                                        sampleRecord("KM", 200.0)};
    std::vector<obs::LedgerRecord> stale = {sampleRecord("MT", 999.0)};
    std::vector<obs::LedgerRecord> b;
    b.push_back(sampleRecord("KM", 200.0));
    b.push_back(stale[0]);
    b.push_back(sampleRecord("MT", 100.0)); // newest MT: matches A
    obs::LedgerRecord extra = sampleRecord("PR", 1.0);
    b.push_back(extra);

    obs::LedgerDiff diff = obs::diffLedgers(a, b);
    EXPECT_EQ(diff.driftedMetrics, 0u);
    EXPECT_TRUE(diff.pairs.empty()); // both matched pairs are clean
    EXPECT_TRUE(diff.unmatchedA.empty());
    ASSERT_EQ(diff.unmatchedB.size(), 1u);
    EXPECT_EQ(diff.unmatchedB[0], extra.matchKey());
    EXPECT_FALSE(diff.clean()); // unmatched records dirty the diff
}

TEST(LedgerDiff, WallNoiseWarnsButNeverFails)
{
    std::vector<obs::LedgerRecord> a = {sampleRecord("MT")};
    std::vector<obs::LedgerRecord> b = {sampleRecord("MT")};
    b[0].wall["wall_seconds"] = a[0].wall["wall_seconds"] * 10.0;
    b[0].wallTimestamp = "2026-02-02T02:02:02Z";

    obs::LedgerDiff diff = obs::diffLedgers(a, b);
    EXPECT_TRUE(diff.clean());
    EXPECT_EQ(diff.wallWarningCount, 1u);

    obs::LedgerDiffOptions loose;
    loose.wallRelTol = 100.0;
    EXPECT_EQ(obs::diffLedgers(a, b, loose).wallWarningCount, 0u);
}

TEST(LedgerDiff, MatchKeySeparatesAppScaleAndConfig)
{
    obs::LedgerRecord r = sampleRecord("MT");
    obs::LedgerRecord app = r, scl = r, key = r;
    app.app = "KM";
    scl.scale = 0.5;
    key.configKey = "cfg:other";
    EXPECT_NE(r.matchKey(), app.matchKey());
    EXPECT_NE(r.matchKey(), scl.matchKey());
    EXPECT_NE(r.matchKey(), key.matchKey());
    EXPECT_EQ(r.matchKey(), sampleRecord("MT").matchKey());
}

TEST(Ledger, SimulationRecordIsDeterministicAcrossRuns)
{
    // The acceptance criterion behind the whole PR: run the same
    // config twice, diff the ledger records — zero deterministic drift.
    cfg::SystemConfig config = sys::transFwConfig();
    sys::SimResults r1 = sys::runApp("MT", config, kScale);
    sys::SimResults r2 = sys::runApp("MT", config, kScale);
    obs::LedgerRecord a = sys::toLedgerRecord(r1, config, kScale, "test");
    obs::LedgerRecord b = sys::toLedgerRecord(r2, config, kScale, "test");
    EXPECT_EQ(a.metrics, b.metrics);

    obs::LedgerDiff diff = obs::diffLedgers({a}, {b});
    EXPECT_TRUE(diff.clean()) << diff.toMarkdown();

    // And a perturbed knob is detected: the config key no longer
    // matches, so the records pair with nothing.
    cfg::SystemConfig other = config;
    other.transFw.forwardThreshold += 0.25;
    sys::SimResults r3 = sys::runApp("MT", other, kScale);
    obs::LedgerRecord c = sys::toLedgerRecord(r3, other, kScale, "test");
    obs::LedgerDiff perturbed = obs::diffLedgers({a}, {c});
    EXPECT_FALSE(perturbed.clean());
}

TEST(Ledger, RecordCarriesExecAndBacklogMetrics)
{
    cfg::SystemConfig config = sys::baselineConfig();
    sys::SimResults r = sys::runApp("AES", config, kScale);
    obs::LedgerRecord rec = sys::toLedgerRecord(r, config, kScale, "t");
    EXPECT_EQ(rec.app, "AES");
    EXPECT_EQ(rec.configKey, config.key());
    EXPECT_GT(rec.metrics.at("exec.events"), 0.0);
    EXPECT_GT(rec.metrics.at("exec.peakEventBacklog"), 0.0);
    EXPECT_GT(rec.metrics.at("exec.cycles"), 0.0);
    EXPECT_FALSE(rec.wallTimestamp.empty());
#if TRANSFW_OBS
    EXPECT_GT(rec.wall.at("wall_seconds"), 0.0);
    EXPECT_GT(rec.wall.at("profile.total_seconds"), 0.0);
#endif
}

TEST(Sweep, LedgerRecordsExecutedPointsWithJobCount)
{
    std::string path = tempPath("ledger_sweep.jsonl");
    sys::SweepRunner runner(2);
    runner.setLedgerPath(path);
    std::vector<sys::RunSpec> specs = {
        {"AES", sys::baselineConfig(), kScale},
        {"AES", sys::transFwConfig(), kScale},
        {"AES", sys::baselineConfig(), kScale}, // memo hit: no record
    };
    runner.run(specs);
    EXPECT_EQ(runner.stats().effectiveJobs, 2u);

    std::vector<std::string> errors;
    std::vector<obs::LedgerRecord> records =
        obs::RunLedger::load(path, &errors);
    EXPECT_TRUE(errors.empty());
    ASSERT_EQ(records.size(), 2u); // executed points only
    for (const obs::LedgerRecord &r : records) {
        EXPECT_EQ(r.source, "sweep");
        EXPECT_EQ(r.wall.at("jobs"), 2.0);
    }
    EXPECT_NE(records[0].matchKey(), records[1].matchKey());

    // Memo hits append nothing new.
    runner.run({specs[0]});
    EXPECT_EQ(obs::RunLedger::load(path, &errors).size(), 2u);
    std::remove(path.c_str());
}

TEST(Sweep, DefaultThreadsIsSane)
{
    EXPECT_GE(sim::TaskPool::defaultThreads(), 1u);
}

TEST(SelfProfiler, BucketsSumToTotalAndProfileIsPopulated)
{
    cfg::SystemConfig config = sys::transFwConfig();
    config.obs.selfProfile = true;
    config.obs.profileStride = 1; // sample every dispatch
    sys::SimResults r = sys::runApp("MT", config, kScale);

#if TRANSFW_OBS
    const obs::HostProfile &p = r.hostProfile;
    EXPECT_EQ(p.stride, 1u);
    EXPECT_GT(p.dispatches, 0u);
    EXPECT_EQ(p.sampledDispatches, p.dispatches);
    EXPECT_GT(p.totalSeconds, 0.0);
    // Self-time buckets partition the sampled dispatch window, so the
    // sum must reconstruct the total up to float accumulation error.
    EXPECT_NEAR(p.bucketSum(), p.totalSeconds,
                0.01 * p.totalSeconds + 1e-9);
    // The simulation exercised at least the kernel, CU, GMMU and
    // Trans-FW paths; each must have absorbed some wall time.
    EXPECT_GT(p.seconds[static_cast<int>(obs::ProfBucket::ComputeUnit)],
              0.0);
    EXPECT_GT(p.seconds[static_cast<int>(obs::ProfBucket::Gmmu)], 0.0);
    EXPECT_GT(r.hostWallSeconds, 0.0);
    EXPECT_GT(r.hostEventsPerSec, 0.0);
    EXPECT_GT(r.peakEventBacklog, 0u);
#else
    EXPECT_EQ(r.hostProfile.stride, 0u);
    EXPECT_EQ(r.hostProfile.totalSeconds, 0.0);
#endif
}

TEST(SelfProfiler, LaneSyncBucketAttributesBarrierTime)
{
    // Window barriers run *between* event dispatches, so the dispatch
    // hook cannot see them; the lane kernel samples them into the
    // dedicated laneSync bucket. Both the bucket and the total grow by
    // the same measured nanoseconds, so the partition invariant holds
    // with the parallel kernel active too.
    EXPECT_STREQ(obs::profBucketName(obs::ProfBucket::LaneSync),
                 "laneSync");

    cfg::SystemConfig config = sys::transFwConfig();
    config.sim.lanes = 2;
    config.obs.selfProfile = true;
    config.obs.profileStride = 1; // sample every dispatch and barrier
    sys::SimResults r = sys::runApp("MT", config, kScale);

#if TRANSFW_OBS
    const obs::HostProfile &p = r.hostProfile;
    EXPECT_GT(
        p.seconds[static_cast<int>(obs::ProfBucket::LaneSync)], 0.0);
    EXPECT_NEAR(p.bucketSum(), p.totalSeconds,
                0.01 * p.totalSeconds + 1e-9);
#else
    EXPECT_EQ(r.hostProfile.totalSeconds, 0.0);
#endif
}

TEST(SelfProfiler, DisabledProfilerRecordsNothing)
{
    cfg::SystemConfig config = sys::baselineConfig();
    config.obs.selfProfile = false;
    sys::SimResults r = sys::runApp("AES", config, kScale);
    EXPECT_EQ(r.hostProfile.stride, 0u);
    EXPECT_EQ(r.hostProfile.dispatches, 0u);
    EXPECT_EQ(r.hostProfile.bucketSum(), 0.0);

    obs::LedgerRecord rec = sys::toLedgerRecord(r, config, kScale, "t");
    EXPECT_EQ(rec.wall.count("profile.total_seconds"), 0u);
}

TEST(SelfProfiler, ConfigKeyCoversProfilerKnobs)
{
    cfg::SystemConfig ref = sys::baselineConfig();
    cfg::SystemConfig a = ref, b = ref;
    a.obs.selfProfile = !ref.obs.selfProfile;
    b.obs.profileStride = ref.obs.profileStride + 1;
    EXPECT_NE(a.key(), ref.key());
    EXPECT_NE(b.key(), ref.key());
}

TEST(SpanRecorder, ExportsSamplerAsCounterTracks)
{
    obs::SpanRecorder spans;
    spans.setEnabled(true);
    spans.record("xlat", 0, 1, 10, 20, 0x42);

    obs::IntervalSampler sampler;
    double v = 1.0;
    sampler.addColumn("queue.depth", [&v] { return v; });
    sim::EventQueue eq;
    sampler.start(eq, 5);
    eq.schedule(12, [] {}); // keep the queue alive past two samples
    eq.run();

    std::ostringstream os;
    spans.writeChromeTrace(os, &sampler);
    std::string trace = os.str();
    EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(trace.find("queue.depth"), std::string::npos);
    EXPECT_NE(trace.find("\"pid\":1002"), std::string::npos);
    EXPECT_NE(trace.find("metrics"), std::string::npos);

    // Without a sampler the trace is counter-free (back compat).
    std::ostringstream bare;
    spans.writeChromeTrace(bare);
    EXPECT_EQ(bare.str().find("\"ph\":\"C\""), std::string::npos);
}
