#include <gtest/gtest.h>

#include "interconnect/link.hpp"
#include "interconnect/network.hpp"

using namespace transfw;
using namespace transfw::ic;

TEST(Link, PropagationLatency)
{
    sim::EventQueue eq;
    Link link(eq, "l", LinkConfig{150, 256.0});
    bool arrived = false;
    sim::Tick when = link.send(256, [&] { arrived = true; });
    EXPECT_EQ(when, 151u); // 1 cycle of serialization + 150 latency
    eq.run();
    EXPECT_TRUE(arrived);
    EXPECT_EQ(eq.now(), when);
}

TEST(Link, BulkTransfersSerialize)
{
    sim::EventQueue eq;
    Link link(eq, "l", LinkConfig{100, 16.0});
    sim::Tick first = link.send(1600, [] {});  // 100 cycles ser
    sim::Tick second = link.send(1600, [] {}); // queues behind the first
    EXPECT_EQ(first, 200u);
    EXPECT_EQ(second, 300u);
    eq.run();
}

TEST(Link, CtrlChannelBypassesBulkQueue)
{
    sim::EventQueue eq;
    Link link(eq, "l", LinkConfig{100, 16.0});
    link.send(16000, [] {}); // 1000 cycles of bulk serialization
    sim::Tick ctrl = link.sendCtrl(32, [] {});
    EXPECT_EQ(ctrl, 102u); // 2-cycle token + latency, no queuing
    eq.run();
}

TEST(Link, AccountsTraffic)
{
    sim::EventQueue eq;
    Link link(eq, "l", LinkConfig{10, 32.0});
    link.send(4096, [] {});
    link.sendCtrl(32, [] {});
    EXPECT_EQ(link.bytesSent(), 4128u);
    EXPECT_EQ(link.messages(), 2u);
    eq.run();
}

TEST(Network, TopologyAndTotals)
{
    sim::EventQueue eq;
    Network net(eq, 4, LinkConfig{150, 32}, LinkConfig{150, 64});
    EXPECT_EQ(net.numGpus(), 4);
    net.toHost(0).send(100, [] {});
    net.fromHost(3).send(200, [] {});
    net.peer(1, 2).send(300, [] {});
    eq.run();
    EXPECT_EQ(net.totalBytes(), 600u);
    // Distinct directions are distinct links.
    EXPECT_NE(&net.peer(1, 2), &net.peer(2, 1));
    EXPECT_NE(&net.toHost(0), &net.fromHost(0));
}

TEST(Network, SelfPeerPanics)
{
    sim::EventQueue eq;
    Network net(eq, 2, LinkConfig{}, LinkConfig{});
    EXPECT_DEATH({ net.peer(1, 1); }, "self");
}
