#include <gtest/gtest.h>

#include "mem/data_cache.hpp"
#include "mem/dram.hpp"
#include "mem/mem_hierarchy.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;
using namespace transfw::mem;

TEST(Dram, RowHitsAreFaster)
{
    sim::EventQueue eq;
    Dram dram(eq, "dram", DramConfig{});
    sim::Tick first = 0, second = 0;
    dram.access(0x1000, [&] { first = eq.now(); });
    eq.run();
    dram.access(0x1040, [&] { second = eq.now() - first; });
    eq.run();
    // Same 2 KB row: second access pays CAS only.
    EXPECT_EQ(first, 100u + 4u);
    EXPECT_EQ(second, 40u + 4u);
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(Dram, BankConflictsQueue)
{
    sim::EventQueue eq;
    DramConfig config;
    config.banks = 2;
    Dram dram(eq, "dram", config);
    // Same bank (rows 0 and 2 with 2 banks), different rows: serialize.
    sim::Tick done_a = 0, done_b = 0;
    dram.access(0, [&] { done_a = eq.now(); });
    dram.access(2ULL << 11, [&] { done_b = eq.now(); });
    eq.run();
    EXPECT_EQ(done_a, 104u);
    EXPECT_EQ(done_b, 104u + 104u); // queued behind, row miss again
}

TEST(Dram, DifferentBanksOverlap)
{
    sim::EventQueue eq;
    DramConfig config;
    config.banks = 2;
    Dram dram(eq, "dram", config);
    sim::Tick done_a = 0, done_b = 0;
    dram.access(0, [&] { done_a = eq.now(); });
    dram.access(1ULL << 11, [&] { done_b = eq.now(); }); // other bank
    eq.run();
    EXPECT_EQ(done_a, 104u);
    EXPECT_EQ(done_b, 104u);
}

namespace {

/** Cache backed by a fixed-latency "memory" for deterministic tests. */
struct CacheHarness
{
    sim::EventQueue eq;
    int fetches = 0;
    DataCache cache;

    explicit CacheHarness(DataCacheConfig config = {16 << 10, 4, 64, 1})
        : cache(eq, "l1", config,
                [this](PhysAddr, DataCache::Callback cb) {
                    ++fetches;
                    eq.schedule(100, std::move(cb));
                })
    {}
};

} // namespace

TEST(DataCache, MissThenHit)
{
    CacheHarness h;
    sim::Tick miss = 0, hit = 0;
    h.cache.access(0x1234, false, [&] { miss = h.eq.now(); });
    h.eq.run();
    h.cache.access(0x1238, false, [&] { hit = h.eq.now() - miss; });
    h.eq.run();
    EXPECT_EQ(miss, 101u); // 1 cycle tag + 100 fill
    EXPECT_EQ(hit, 1u);    // same line
    EXPECT_EQ(h.fetches, 1);
    EXPECT_DOUBLE_EQ(h.cache.hitRate(), 0.5);
}

TEST(DataCache, MshrCoalescesSameLine)
{
    CacheHarness h;
    int done = 0;
    for (int i = 0; i < 4; ++i)
        h.cache.access(0x2000 + static_cast<PhysAddr>(i) * 8, false,
                       [&] { ++done; });
    h.eq.run();
    EXPECT_EQ(done, 4);
    EXPECT_EQ(h.fetches, 1); // one line fetch serves all four
}

TEST(DataCache, DirtyEvictionWritesBack)
{
    // Single-line cache: every new line evicts the previous one.
    CacheHarness h(DataCacheConfig{64, 1, 64, 1});
    h.cache.access(0x0000, true, [] {}); // dirty
    h.eq.run();
    h.cache.access(0x1000, false, [] {}); // evicts the dirty line
    h.eq.run();
    EXPECT_EQ(h.cache.writebacks(), 1u);
    h.cache.access(0x2000, false, [] {}); // evicts a clean line
    h.eq.run();
    EXPECT_EQ(h.cache.writebacks(), 1u);
}

TEST(DataCache, InvalidateAllForcesRefetch)
{
    CacheHarness h;
    h.cache.access(0x40, false, [] {});
    h.eq.run();
    h.cache.invalidateAll();
    h.cache.access(0x40, false, [] {});
    h.eq.run();
    EXPECT_EQ(h.fetches, 2);
}

TEST(GpuMemoryHierarchy, EndToEnd)
{
    sim::EventQueue eq;
    MemHierarchyConfig config;
    GpuMemoryHierarchy mem(eq, "gpu0.mem", config, 4);
    int done = 0;
    // First sweep warms the lines (concurrent accesses coalesce in the
    // MSHRs); the second sweep hits L1 throughout.
    for (PhysAddr addr = 0; addr < 1024; addr += 8)
        mem.access(0, addr, false, [&] { ++done; });
    eq.run();
    for (PhysAddr addr = 0; addr < 1024; addr += 8)
        mem.access(0, addr, false, [&] { ++done; });
    eq.run();
    EXPECT_EQ(done, 256);
    EXPECT_GE(mem.l1(0).hitRate(), 0.5); // whole second sweep hits
    EXPECT_GT(mem.dram().accesses(), 0u);
    EXPECT_GE(mem.l1HitRate(), 0.5);
}

TEST(GpuMemoryHierarchy, L2SharedAcrossCus)
{
    sim::EventQueue eq;
    GpuMemoryHierarchy mem(eq, "m", MemHierarchyConfig{}, 2);
    mem.access(0, 0x5000, false, [] {});
    eq.run();
    std::uint64_t dram_before = mem.dram().accesses();
    // CU 1 misses its own L1 but hits the shared L2.
    mem.access(1, 0x5000, false, [] {});
    eq.run();
    EXPECT_EQ(mem.dram().accesses(), dram_before);
    EXPECT_GT(mem.l2().hits(), 0u);
}

TEST(MemModelSystem, HierarchyRunsWithSensibleTiming)
{
    wl::SyntheticSpec spec;
    spec.name = "mem-model";
    spec.numCtas = 32;
    spec.memOpsPerCta = 40;
    spec.regions = {{.name = "r", .pages = 64, .weight = 1.0,
                     .reuse = 8}};
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig simple = sys::baselineConfig();
    simple.cusPerGpu = 8;
    cfg::SystemConfig detailed = simple;
    detailed.memModel = cfg::MemModel::Hierarchy;

    sys::SimResults a = sys::runWorkload(workload, simple);
    sys::SimResults b = sys::runWorkload(workload, detailed);
    EXPECT_EQ(a.memOps, b.memOps);
    // The detailed model streams lines through real caches/DRAM banks:
    // timing differs from the flat model but stays the same order of
    // magnitude (misses cost ~115 cycles vs the flat 100, hits ~1).
    EXPECT_GT(b.execTime, 0u);
    EXPECT_LT(b.execTime, 4 * a.execTime);
}

TEST(MemModelSystem, TransFwConclusionRobustUnderHierarchy)
{
    wl::SyntheticSpec spec;
    spec.name = "mem-model-fw";
    spec.numCtas = 64;
    spec.memOpsPerCta = 40;
    spec.regions = {
        {.name = "hot", .pages = 64, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.3, .reuse = 2},
        {.name = "own", .pages = 256, .weight = 0.5, .reuse = 2},
    };
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig base = sys::baselineConfig();
    base.cusPerGpu = 8;
    base.memModel = cfg::MemModel::Hierarchy;
    cfg::SystemConfig fw = base;
    fw.transFw.enabled = true;

    sys::SimResults a = sys::runWorkload(workload, base);
    sys::SimResults b = sys::runWorkload(workload, fw);
    EXPECT_GT(sys::speedup(a, b), 1.0);
}
