#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <vector>

#include "filter/metrohash.hpp"

using transfw::filter::metroHash64;

TEST(MetroHash, Deterministic)
{
    EXPECT_EQ(metroHash64(0x1234ULL, 7), metroHash64(0x1234ULL, 7));
    const char data[] = "trans-fw remote forwarding";
    EXPECT_EQ(metroHash64(data, sizeof(data), 1),
              metroHash64(data, sizeof(data), 1));
}

TEST(MetroHash, SeedChangesOutput)
{
    EXPECT_NE(metroHash64(0x1234ULL, 1), metroHash64(0x1234ULL, 2));
}

TEST(MetroHash, InputChangesOutput)
{
    EXPECT_NE(metroHash64(0x1234ULL, 1), metroHash64(0x1235ULL, 1));
}

TEST(MetroHash, AllLengthsHashable)
{
    std::vector<unsigned char> buf(100, 0xAB);
    std::uint64_t prev = 0;
    for (std::size_t len = 0; len <= buf.size(); ++len) {
        std::uint64_t h = metroHash64(buf.data(), len, 3);
        if (len > 0) {
            EXPECT_NE(h, prev);
        }
        prev = h;
    }
}

TEST(MetroHash, AvalancheOnSingleBitFlips)
{
    // Flipping any input bit should flip roughly half the output bits.
    double total = 0;
    int cases = 0;
    for (std::uint64_t key = 1; key < 200; key += 13) {
        std::uint64_t base = metroHash64(key, 9);
        for (int bit = 0; bit < 64; bit += 7) {
            std::uint64_t flipped = metroHash64(key ^ (1ULL << bit), 9);
            total += std::popcount(base ^ flipped);
            ++cases;
        }
    }
    double mean = total / cases;
    EXPECT_GT(mean, 24.0);
    EXPECT_LT(mean, 40.0);
}

TEST(MetroHash, Uint64OverloadMatchesBufferPath)
{
    // The filter's hot path hashes 8-byte keys through a specialized
    // inline overload; it must produce exactly what hashing the key's
    // byte image through the generic buffer path produces, or every
    // Cuckoo fingerprint and bucket choice would silently change.
    for (std::uint64_t key = 0; key < 4096; key = key * 3 + 1) {
        for (std::uint64_t seed : {0ULL, 1ULL, 0xA5A5A5A5ULL,
                                   0xF1F1F1F1ULL, ~0ULL}) {
            unsigned char buf[8];
            std::memcpy(buf, &key, sizeof buf);
            EXPECT_EQ(metroHash64(key, seed),
                      metroHash64(buf, sizeof buf, seed))
                << key << " seed " << seed;
        }
    }
}

TEST(MetroHash, BucketUniformity)
{
    // Sequential keys must spread evenly over a modest bucket count.
    constexpr int kBuckets = 64;
    constexpr int kKeys = 64000;
    std::vector<int> counts(kBuckets, 0);
    for (std::uint64_t key = 0; key < kKeys; ++key)
        ++counts[metroHash64(key, 5) % kBuckets];
    double expected = static_cast<double>(kKeys) / kBuckets;
    for (int count : counts) {
        EXPECT_GT(count, expected * 0.8);
        EXPECT_LT(count, expected * 1.2);
    }
}
