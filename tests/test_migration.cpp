#include <gtest/gtest.h>

#include "helpers.hpp"
#include "interconnect/network.hpp"
#include "transfw/forwarding_table.hpp"
#include "uvm/migration.hpp"

using namespace transfw;

namespace {

struct EngineHarness
{
    cfg::SystemConfig config;
    sim::EventQueue eq;
    mem::PageTable central;
    ic::Network net;
    std::vector<std::unique_ptr<test::FakeGpu>> gpus;
    std::unique_ptr<core::FtCluster> ft;
    std::unique_ptr<uvm::MigrationEngine> engine;

    std::vector<tlb::TlbEntry> results;
    std::vector<mem::Vpn> ownerChanges;

    explicit EngineHarness(cfg::SystemConfig c = {}, bool with_ft = false)
        : config(std::move(c)), central(config.geometry()),
          net(eq, config.numGpus, config.hostLink, config.peerLink)
    {
        std::vector<mmu::GpuIface *> ifaces;
        for (int g = 0; g < config.numGpus; ++g) {
            gpus.push_back(std::make_unique<test::FakeGpu>(config, g));
            ifaces.push_back(gpus.back().get());
        }
        if (with_ft) {
            config.transFw.enabled = true;
            ft = std::make_unique<core::FtCluster>(config.transFw);
        }
        engine = std::make_unique<uvm::MigrationEngine>(
            eq, config, central, ifaces, net, ft.get());
        engine->onOwnerChanged = [this](mem::Vpn vpn) {
            ownerChanges.push_back(vpn);
        };
    }

    /** Map a page at `owner` in both local and central tables. */
    void
    placeAt(mem::Vpn vpn, int owner, bool writable = true)
    {
        mem::Ppn ppn = gpus[static_cast<std::size_t>(owner)]
                           ->frames()
                           .allocate();
        gpus[static_cast<std::size_t>(owner)]->localPageTable().map(
            vpn, mem::PageInfo{ppn, owner, 1u << owner, writable, false});
        central.map(vpn, mem::PageInfo{ppn, owner, 1u << owner, writable,
                                       false});
    }

    void
    placeOnCpu(mem::Vpn vpn)
    {
        central.map(vpn,
                    mem::PageInfo{vpn, mem::kCpuDevice, 0, true, false});
    }

    void
    resolve(mmu::XlatPtr req)
    {
        engine->resolve(std::move(req), [this](const tlb::TlbEntry &e) {
            results.push_back(e);
        });
    }
};

} // namespace

TEST(MigrationOnTouch, MovesPageAndUpdatesTables)
{
    EngineHarness h;
    h.placeAt(0x100, /*owner=*/1);
    h.resolve(test::makeReq(0x100, /*gpu=*/0));
    h.eq.run();

    ASSERT_EQ(h.results.size(), 1u);
    EXPECT_EQ(h.results[0].owner, 0);
    EXPECT_TRUE(h.results[0].writable);

    // Old owner lost the page (PTE + TLB), new owner has it.
    EXPECT_EQ(h.gpus[1]->localPageTable().lookup(0x100), nullptr);
    EXPECT_EQ(h.gpus[1]->invalidations, 1);
    const mem::PageInfo *local = h.gpus[0]->localPageTable().lookup(0x100);
    ASSERT_NE(local, nullptr);
    EXPECT_EQ(local->owner, 0);
    EXPECT_EQ(h.central.lookup(0x100)->owner, 0);
    EXPECT_EQ(h.engine->stats().migrations, 1u);
    EXPECT_EQ(h.ownerChanges.size(), 1u);
    EXPECT_EQ(h.engine->stats().bytesMoved, 4096u);
}

TEST(MigrationOnTouch, CpuColdFault)
{
    EngineHarness h;
    h.placeOnCpu(0x200);
    h.resolve(test::makeReq(0x200, 2));
    h.eq.run();
    EXPECT_EQ(h.central.lookup(0x200)->owner, 2);
    EXPECT_NE(h.gpus[2]->localPageTable().lookup(0x200), nullptr);
}

TEST(MigrationOnTouch, AlreadyLocalShortPath)
{
    EngineHarness h;
    h.placeAt(0x300, 0);
    h.resolve(test::makeReq(0x300, 0));
    h.eq.run();
    ASSERT_EQ(h.results.size(), 1u);
    EXPECT_EQ(h.engine->stats().migrations, 0u);
    EXPECT_EQ(h.engine->stats().alreadyLocal, 1u);
}

TEST(MigrationOnTouch, PerPageSerializationPingPong)
{
    EngineHarness h;
    h.placeAt(0x400, 0);
    // GPUs 1 and 2 fault concurrently on the same page.
    h.resolve(test::makeReq(0x400, 1));
    h.resolve(test::makeReq(0x400, 2));
    h.eq.run();
    ASSERT_EQ(h.results.size(), 2u);
    // Both moves happened, serialized; the final owner is GPU 2.
    EXPECT_EQ(h.engine->stats().migrations, 2u);
    EXPECT_EQ(h.central.lookup(0x400)->owner, 2);
}

TEST(MigrationOnTouch, UpdatesPrtAndFt)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    EngineHarness h(config, /*with_ft=*/true);
    h.placeAt(0x500, 1);
    h.gpus[1]->prt()->pageArrived(0x500);
    h.ft->pageArrived(0x500, 1);

    h.resolve(test::makeReq(0x500, 0));
    h.eq.run();
    EXPECT_FALSE(h.gpus[1]->prt()->mayBeLocal(0x500));
    EXPECT_TRUE(h.gpus[0]->prt()->mayBeLocal(0x500));
    auto owner = h.ft->findOwner(0x500, 4, /*exclude=*/2);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, 0);
}

TEST(MigrationOnTouch, ZeroCostOracleStillFunctional)
{
    cfg::SystemConfig config;
    config.oracle.zeroMigrationCost = true;
    EngineHarness h(config);
    h.placeAt(0x600, 1);
    h.resolve(test::makeReq(0x600, 0));
    h.eq.run();
    EXPECT_EQ(h.central.lookup(0x600)->owner, 0);
    EXPECT_EQ(h.engine->stats().bytesMoved, 0u);
    // Only the shootdown remains on the clock.
    EXPECT_LE(h.eq.now(), h.config.shootdownCost + 1);
}

TEST(Replication, ReadFaultCreatesSharedCopies)
{
    cfg::SystemConfig config;
    config.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    EngineHarness h(config);
    h.placeAt(0x700, 0);
    h.resolve(test::makeReq(0x700, 1, /*write=*/false));
    h.eq.run();

    ASSERT_EQ(h.results.size(), 1u);
    EXPECT_FALSE(h.results[0].writable); // S state
    // Both copies exist; the owner's PTE downgraded to read-only.
    EXPECT_FALSE(h.gpus[0]->localPageTable().lookup(0x700)->writable);
    EXPECT_FALSE(h.gpus[1]->localPageTable().lookup(0x700)->writable);
    EXPECT_EQ(h.central.lookup(0x700)->replicaMask, 0b11u);
    EXPECT_EQ(h.engine->stats().replications, 1u);
}

TEST(Replication, WriteInvalidatesAllReplicas)
{
    cfg::SystemConfig config;
    config.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    EngineHarness h(config);
    h.placeAt(0x800, 0);
    h.resolve(test::makeReq(0x800, 1, false));
    h.resolve(test::makeReq(0x800, 2, false));
    h.eq.run();
    EXPECT_EQ(h.central.lookup(0x800)->replicaMask, 0b111u);

    // GPU 1 writes: everyone else must lose the page (E state at 1).
    h.resolve(test::makeReq(0x800, 1, /*write=*/true));
    h.eq.run();
    EXPECT_EQ(h.engine->stats().writeInvalidations, 1u);
    EXPECT_EQ(h.central.lookup(0x800)->owner, 1);
    EXPECT_EQ(h.central.lookup(0x800)->replicaMask, 0b10u);
    EXPECT_TRUE(h.central.lookup(0x800)->writable);
    EXPECT_EQ(h.gpus[0]->localPageTable().lookup(0x800), nullptr);
    EXPECT_EQ(h.gpus[2]->localPageTable().lookup(0x800), nullptr);
    const mem::PageInfo *writer = h.gpus[1]->localPageTable().lookup(0x800);
    ASSERT_NE(writer, nullptr);
    EXPECT_TRUE(writer->writable);
}

TEST(Replication, WriterWithoutReplicaPullsData)
{
    cfg::SystemConfig config;
    config.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    EngineHarness h(config);
    h.placeAt(0x900, 0);
    h.resolve(test::makeReq(0x900, 3, /*write=*/true));
    h.eq.run();
    EXPECT_EQ(h.central.lookup(0x900)->owner, 3);
    EXPECT_GT(h.engine->stats().bytesMoved, 0u);
}

TEST(RemoteMapping, FaultMapsWithoutMigration)
{
    cfg::SystemConfig config;
    config.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
    EngineHarness h(config);
    h.placeAt(0xA00, 1);
    h.resolve(test::makeReq(0xA00, 0));
    h.eq.run();

    ASSERT_EQ(h.results.size(), 1u);
    EXPECT_TRUE(h.results[0].remote);
    EXPECT_EQ(h.results[0].owner, 1);
    EXPECT_EQ(h.engine->stats().migrations, 0u);
    EXPECT_EQ(h.engine->stats().remoteMappings, 1u);
    // Owner keeps the page.
    EXPECT_EQ(h.central.lookup(0xA00)->owner, 1);
    const mem::PageInfo *mapped = h.gpus[0]->localPageTable().lookup(0xA00);
    ASSERT_NE(mapped, nullptr);
    EXPECT_TRUE(mapped->remote);
}

TEST(RemoteMapping, AccessCounterTriggersMigration)
{
    cfg::SystemConfig config;
    config.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
    config.remoteMapMigrateThreshold = 4;
    EngineHarness h(config);
    h.placeAt(0xB00, 1);
    h.resolve(test::makeReq(0xB00, 0));
    h.eq.run();

    for (int access = 0; access < 4; ++access)
        h.engine->noteRemoteAccess(0xB00, 0);
    h.eq.run();

    EXPECT_EQ(h.engine->stats().counterMigrations, 1u);
    EXPECT_EQ(h.central.lookup(0xB00)->owner, 0);
    const mem::PageInfo *local = h.gpus[0]->localPageTable().lookup(0xB00);
    ASSERT_NE(local, nullptr);
    EXPECT_FALSE(local->remote);
    // The old owner's copy and every remote mapping are gone.
    EXPECT_EQ(h.gpus[1]->localPageTable().lookup(0xB00), nullptr);
}

TEST(RemoteMapping, CounterIgnoredWhileBusy)
{
    cfg::SystemConfig config;
    config.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
    config.remoteMapMigrateThreshold = 1;
    EngineHarness h(config);
    h.placeAt(0xC00, 1);
    h.resolve(test::makeReq(0xC00, 0)); // in flight (busy)
    h.engine->noteRemoteAccess(0xC00, 0);
    h.eq.run();
    // No crash, and the page ended up somewhere consistent.
    EXPECT_NE(h.central.lookup(0xC00), nullptr);
}

TEST(Migration, FrameAccountingBalances)
{
    EngineHarness h;
    h.placeAt(0xD00, 0);
    std::uint64_t before = h.gpus[0]->frames().allocated();
    // Bounce the page 0 -> 1 -> 0.
    h.resolve(test::makeReq(0xD00, 1));
    h.eq.run();
    h.resolve(test::makeReq(0xD00, 0));
    h.eq.run();
    EXPECT_EQ(h.gpus[0]->frames().allocated(), before);
    EXPECT_EQ(h.gpus[1]->frames().allocated(), 0u);
}
