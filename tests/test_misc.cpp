#include <gtest/gtest.h>

#include "config/config.hpp"
#include "mem/frame_allocator.hpp"
#include "mmu/walk_timing.hpp"
#include "system/experiment.hpp"

using namespace transfw;

TEST(FrameAllocator, AllocateFreeRecycle)
{
    mem::FrameAllocator alloc(1 << 20, 12); // 256 frames
    EXPECT_EQ(alloc.capacity(), 256u);
    mem::Ppn a = alloc.allocate();
    mem::Ppn b = alloc.allocate();
    EXPECT_NE(a, b);
    EXPECT_EQ(alloc.allocated(), 2u);
    alloc.free(a);
    EXPECT_EQ(alloc.allocated(), 1u);
    EXPECT_EQ(alloc.allocate(), a); // LIFO recycling
}

TEST(FrameAllocator, ExhaustionIsFatal)
{
    EXPECT_EXIT(
        {
            mem::FrameAllocator alloc(2 << 12, 12); // 2 frames
            alloc.allocate();
            alloc.allocate();
            alloc.allocate();
        },
        ::testing::ExitedWithCode(1), "exhausted");
}

TEST(Config, DefaultsMatchTable2)
{
    cfg::SystemConfig config;
    EXPECT_EQ(config.numGpus, 4);
    EXPECT_EQ(config.cusPerGpu, 64);
    EXPECT_EQ(config.l1Tlb.entries, 32u);
    EXPECT_EQ(config.l2Tlb.entries, 512u);
    EXPECT_EQ(config.l2Tlb.lookupLatency, 10u);
    EXPECT_EQ(config.hostTlb.entries, 2048u);
    EXPECT_EQ(config.gmmuWalkers, 8);
    EXPECT_EQ(config.hostWalkers, 16);
    EXPECT_EQ(config.memLatency, 100u);
    EXPECT_EQ(config.pwcEntries, 128u);
    EXPECT_EQ(config.gmmuPwQueue, 64u);
    EXPECT_EQ(config.hostLink.latency, 150u);
    EXPECT_EQ(config.pageTableLevels, 5);
    EXPECT_EQ(config.pageShift, mem::kSmallPageShift);
    config.validate(); // must not die
}

TEST(Config, ValidateRejectsNonsense)
{
    cfg::SystemConfig config;
    config.pageTableLevels = 7;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "pageTableLevels");
    cfg::SystemConfig config2;
    config2.numGpus = 0;
    EXPECT_EXIT(config2.validate(), ::testing::ExitedWithCode(1),
                "numGpus");
    cfg::SystemConfig config3;
    config3.pageShift = 13;
    EXPECT_EXIT(config3.validate(), ::testing::ExitedWithCode(1),
                "pageShift");
}

TEST(Config, ForwardTriggerScalesWithWalkers)
{
    cfg::SystemConfig config;
    config.transFw.forwardThreshold = 0.5;
    config.hostWalkers = 16;
    EXPECT_EQ(config.forwardQueueTrigger(), 8u);
    config.transFw.forwardThreshold = 2.0;
    EXPECT_EQ(config.forwardQueueTrigger(), 32u);
}

TEST(WalkTiming, NoAsapIsIdentity)
{
    cfg::AsapConfig asap;
    sim::Rng rng(1);
    mmu::WalkTiming t = mmu::walkTiming(5, asap, rng);
    EXPECT_EQ(t.serialAccesses, 5);
    EXPECT_EQ(t.countedAccesses, 5);
}

TEST(WalkTiming, AsapAlwaysCorrectOverlapsTwo)
{
    cfg::AsapConfig asap{true, 1.0};
    sim::Rng rng(1);
    mmu::WalkTiming t = mmu::walkTiming(5, asap, rng);
    EXPECT_EQ(t.serialAccesses, 3);
    EXPECT_EQ(t.countedAccesses, 5);
}

TEST(WalkTiming, AsapAlwaysWrongWastesTwo)
{
    cfg::AsapConfig asap{true, 0.0};
    sim::Rng rng(1);
    mmu::WalkTiming t = mmu::walkTiming(5, asap, rng);
    EXPECT_EQ(t.serialAccesses, 5);
    EXPECT_EQ(t.countedAccesses, 7);
}

TEST(WalkTiming, AsapSkipsShortWalks)
{
    cfg::AsapConfig asap{true, 1.0};
    sim::Rng rng(1);
    mmu::WalkTiming t = mmu::walkTiming(2, asap, rng);
    EXPECT_EQ(t.serialAccesses, 2);
    EXPECT_EQ(t.countedAccesses, 2);
}

TEST(Experiment, BaselineAndTransFwConfigs)
{
    cfg::SystemConfig baseline = sys::baselineConfig();
    EXPECT_FALSE(baseline.transFw.enabled);
    cfg::SystemConfig fw = sys::transFwConfig();
    EXPECT_TRUE(fw.transFw.enabled);
    EXPECT_DOUBLE_EQ(fw.transFw.forwardThreshold, 0.5);
}

TEST(Experiment, EffectiveScale)
{
    EXPECT_DOUBLE_EQ(sys::effectiveScale(2.0), 2.0);
    unsetenv("TRANSFW_SCALE");
    EXPECT_DOUBLE_EQ(sys::effectiveScale(0.0), 1.0);
    setenv("TRANSFW_SCALE", "0.25", 1);
    EXPECT_DOUBLE_EQ(sys::effectiveScale(0.0), 0.25);
    unsetenv("TRANSFW_SCALE");
}

TEST(Experiment, SpeedupRatio)
{
    sys::SimResults a, b;
    a.execTime = 200;
    b.execTime = 100;
    EXPECT_DOUBLE_EQ(sys::speedup(a, b), 2.0);
    EXPECT_DOUBLE_EQ(sys::speedup(b, a), 0.5);
}
