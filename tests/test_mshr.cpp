#include <gtest/gtest.h>

#include "cache/mshr.hpp"

using transfw::cache::Mshr;

TEST(Mshr, PrimaryThenMerge)
{
    Mshr<int> mshr;
    EXPECT_TRUE(mshr.allocate(10, 1));
    EXPECT_FALSE(mshr.allocate(10, 2));
    EXPECT_FALSE(mshr.allocate(10, 3));
    EXPECT_TRUE(mshr.outstanding(10));
    EXPECT_EQ(mshr.allocations(), 1u);
    EXPECT_EQ(mshr.merges(), 2u);

    auto waiters = mshr.release(10);
    EXPECT_EQ(std::vector<int>(waiters.begin(), waiters.end()),
              (std::vector<int>{1, 2, 3}));
    EXPECT_FALSE(mshr.outstanding(10));
}

TEST(Mshr, IndependentKeys)
{
    Mshr<int> mshr;
    EXPECT_TRUE(mshr.allocate(1, 11));
    EXPECT_TRUE(mshr.allocate(2, 22));
    EXPECT_EQ(mshr.inflight(), 2u);
    auto waiters = mshr.release(1);
    EXPECT_EQ(std::vector<int>(waiters.begin(), waiters.end()),
              std::vector<int>{11});
    EXPECT_EQ(mshr.inflight(), 1u);
}

TEST(Mshr, ReleaseUnknownKeyIsEmpty)
{
    Mshr<int> mshr;
    EXPECT_TRUE(mshr.release(99).empty());
}

TEST(Mshr, ReallocateAfterRelease)
{
    Mshr<int> mshr;
    mshr.allocate(5, 1);
    mshr.release(5);
    // The key is free again: next allocate is primary.
    EXPECT_TRUE(mshr.allocate(5, 2));
}
