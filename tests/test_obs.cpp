#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "transfw/transfw.hpp"

using namespace transfw;

// ---------------------------------------------------------------------------
// LogHistogram: percentiles against a sorted-vector oracle.
// ---------------------------------------------------------------------------

namespace {

double
oracleQuantile(std::vector<double> sorted, double q)
{
    // Same convention the histogram documents: the value at rank
    // ceil(q * n), 1-based.
    std::sort(sorted.begin(), sorted.end());
    std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted[rank - 1];
}

void
checkQuantiles(const obs::LogHistogram &hist, const std::vector<double> &samples)
{
    for (double q : {0.50, 0.90, 0.95, 0.99, 0.999}) {
        double oracle = oracleQuantile(samples, q);
        double got = hist.quantile(q);
        // One log bucket of relative error, plus one for integer
        // truncation of small values.
        double tol = oracle / obs::LogHistogram::kSubBuckets + 1.0;
        EXPECT_NEAR(got, oracle, tol) << "q=" << q;
    }
}

} // namespace

TEST(LogHistogram, Empty)
{
    obs::LogHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.quantile(0.5), 0.0);
    EXPECT_EQ(hist.mean(), 0.0);
    EXPECT_EQ(hist.minimum(), 0u);
    EXPECT_EQ(hist.maximum(), 0u);
}

TEST(LogHistogram, SmallValuesExact)
{
    // Values below kSubBuckets land in 1:1 buckets: quantiles exact.
    obs::LogHistogram hist;
    for (int i = 1; i <= 20; ++i)
        hist.record(i);
    EXPECT_EQ(hist.quantile(0.50), 10.0);
    EXPECT_EQ(hist.quantile(0.05), 1.0);
    EXPECT_EQ(hist.quantile(1.00), 20.0);
    EXPECT_EQ(hist.minimum(), 1u);
    EXPECT_EQ(hist.maximum(), 20u);
}

TEST(LogHistogram, UniformOracle)
{
    obs::LogHistogram hist;
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> dist(1.0, 100000.0);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        double x = std::floor(dist(rng));
        samples.push_back(x);
        hist.record(x);
    }
    EXPECT_EQ(hist.count(), samples.size());
    checkQuantiles(hist, samples);
}

TEST(LogHistogram, LogNormalOracle)
{
    // Heavy-tailed latencies: the shape percentile metrics exist for.
    obs::LogHistogram hist;
    std::mt19937_64 rng(11);
    std::lognormal_distribution<double> dist(6.0, 1.5);
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        double x = std::floor(dist(rng)) + 1.0;
        samples.push_back(x);
        hist.record(x);
    }
    checkQuantiles(hist, samples);
    EXPECT_NEAR(hist.mean(),
                std::accumulate(samples.begin(), samples.end(), 0.0) /
                    samples.size(),
                1e-6);
}

TEST(LogHistogram, MergeMatchesCombinedRecording)
{
    obs::LogHistogram a, b, combined;
    std::mt19937_64 rng(3);
    std::uniform_int_distribution<std::uint64_t> dist(0, 1u << 20);
    for (int i = 0; i < 5000; ++i) {
        double x = static_cast<double>(dist(rng));
        (i % 2 ? a : b).record(x);
        combined.record(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.minimum(), combined.minimum());
    EXPECT_EQ(a.maximum(), combined.maximum());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q));
}

TEST(LogHistogram, BucketBoundsCoverValues)
{
    // Every recorded value must land in a bucket whose [low, high)
    // range contains it.
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
          std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{1000},
          std::uint64_t{1} << 40, (std::uint64_t{1} << 40) + 12345}) {
        obs::LogHistogram hist;
        hist.record(static_cast<double>(v));
        for (std::size_t i = 0; i < hist.buckets(); ++i) {
            if (hist.bucketCount(i)) {
                EXPECT_GE(v, obs::LogHistogram::bucketLow(i));
                EXPECT_LT(v, obs::LogHistogram::bucketHigh(i));
            }
        }
    }
}

TEST(LogHistogram, NegativeClampsToZero)
{
    obs::LogHistogram hist;
    hist.record(-5.0);
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_EQ(hist.quantile(1.0), 0.0);
    EXPECT_EQ(hist.sum(), 0.0);
}

// ---------------------------------------------------------------------------
// SpanRecorder: enable/disable, capacity, Chrome trace export.
// ---------------------------------------------------------------------------

TEST(SpanRecorder, DisabledRecordsNothing)
{
    obs::SpanRecorder rec;
    EXPECT_FALSE(rec.enabled());
    rec.record("x", 0, 1, 10, 20);
    EXPECT_TRUE(rec.spans().empty());
}

// Span recording is compiled out entirely under -DTRANSFW_OBS=OFF;
// only the tests that need recorded spans are guarded.
#if TRANSFW_OBS
TEST(SpanRecorder, EnabledRecordsAndClears)
{
    obs::SpanRecorder rec;
    rec.setEnabled(true);
    rec.record("gmmu.walk", 2, 7, 100, 600, 0x42, 500.0);
    ASSERT_EQ(rec.spans().size(), 1u);
    const obs::Span &s = rec.spans()[0];
    EXPECT_STREQ(s.name, "gmmu.walk");
    EXPECT_EQ(s.pid, 2u);
    EXPECT_EQ(s.tid, 7u);
    EXPECT_EQ(s.start, 100u);
    EXPECT_EQ(s.end, 600u);
    EXPECT_EQ(s.vpn, 0x42u);
    EXPECT_DOUBLE_EQ(s.arg, 500.0);
    rec.clear();
    EXPECT_TRUE(rec.spans().empty());
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(SpanRecorder, CapacityDropsAndCounts)
{
    obs::SpanRecorder rec;
    rec.setEnabled(true);
    rec.setCapacity(3);
    for (int i = 0; i < 10; ++i)
        rec.record("s", 0, static_cast<std::uint64_t>(i), i, i + 1);
    // Three real spans plus one synthetic "obs.dropped" marker that
    // spans the lost region and carries the drop count in its arg.
    ASSERT_EQ(rec.spans().size(), 4u);
    EXPECT_EQ(rec.dropped(), 7u);
    const obs::Span &d = rec.spans().back();
    EXPECT_STREQ(d.name, "obs.dropped");
    EXPECT_EQ(d.pid, obs::SpanRecorder::kObsPid);
    EXPECT_EQ(d.start, 3u);  // first dropped span's start
    EXPECT_EQ(d.end, 10u);   // last dropped span's end
    EXPECT_DOUBLE_EQ(d.arg, 7.0);

    rec.clear();
    EXPECT_TRUE(rec.spans().empty());
    EXPECT_EQ(rec.dropped(), 0u);
    // The synthetic marker must re-arm after clear().
    for (int i = 0; i < 5; ++i)
        rec.record("s", 0, static_cast<std::uint64_t>(i), i, i + 1);
    ASSERT_EQ(rec.spans().size(), 4u);
    EXPECT_STREQ(rec.spans().back().name, "obs.dropped");
    EXPECT_DOUBLE_EQ(rec.spans().back().arg, 2.0);
}
#endif // TRANSFW_OBS

namespace {

/** Count occurrences of a substring. */
std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/**
 * Minimal JSON well-formedness check: balanced braces/brackets outside
 * strings, no trailing comma before a closer. Enough to catch the
 * classic exporter bugs (stray commas, unterminated strings) without a
 * JSON library in the test image.
 */
void
expectWellFormedJson(const std::string &text)
{
    std::vector<char> stack;
    bool inString = false, escaped = false;
    char lastMeaningful = '\0';
    for (char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"') {
                inString = false;
                lastMeaningful = '"';
            }
            continue;
        }
        switch (c) {
        case '"': inString = true; break;
        case '{': case '[': stack.push_back(c); break;
        case '}':
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(stack.back(), '{');
            ASSERT_NE(lastMeaningful, ',') << "trailing comma before }";
            stack.pop_back();
            break;
        case ']':
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(stack.back(), '[');
            ASSERT_NE(lastMeaningful, ',') << "trailing comma before ]";
            stack.pop_back();
            break;
        default: break;
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            lastMeaningful = c;
    }
    EXPECT_FALSE(inString) << "unterminated string";
    EXPECT_TRUE(stack.empty()) << "unbalanced braces/brackets";
}

} // namespace

#if TRANSFW_OBS
TEST(SpanRecorder, ChromeTraceJsonParsesBack)
{
    obs::SpanRecorder rec;
    rec.setEnabled(true);
    rec.record("xlat", 0, 1, 0, 100, 0x10, 100.0);
    rec.record("gmmu.queue", 0, 1, 0, 20, 0x10);
    rec.record("gmmu.walk", 0, 1, 20, 100, 0x10);
    rec.record("driver.batch", obs::SpanRecorder::kHostPid, 0, 5, 50);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    std::string json = os.str();

    expectWellFormedJson(json);
    // Four "X" complete events.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 4u);
    // Metadata names each pid track: gpu0 and the host driver.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"M\""), 2u);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"host\""), std::string::npos);
    EXPECT_NE(json.find("\"gpu0\""), std::string::npos);
    // Durations are end - start.
    EXPECT_NE(json.find("\"dur\":80"), std::string::npos);   // gmmu.walk
    EXPECT_NE(json.find("\"dur\":100"), std::string::npos);  // xlat
    // The self-check arg rides along.
    EXPECT_NE(json.find("\"args\""), std::string::npos);
}
#endif // TRANSFW_OBS

// ---------------------------------------------------------------------------
// MetricRegistry.
// ---------------------------------------------------------------------------

TEST(MetricRegistry, GaugesAreLive)
{
    obs::MetricRegistry reg;
    int counter = 0;
    reg.registerGauge("a.b.count",
                      [&counter] { return static_cast<double>(counter); });
    EXPECT_TRUE(reg.has("a.b.count"));
    EXPECT_EQ(reg.value("a.b.count"), 0.0);
    counter = 42;
    EXPECT_EQ(reg.value("a.b.count"), 42.0);
}

TEST(MetricRegistry, ScalarsAndNames)
{
    obs::MetricRegistry reg;
    reg.setScalar("z.last", 3.5);
    reg.registerGauge("a.first", [] { return 1.0; });
    EXPECT_FALSE(reg.has("missing"));
    EXPECT_EQ(reg.value("z.last"), 3.5);
    std::vector<std::string> names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "z.last");
}

TEST(MetricRegistry, HistogramExpandsToLeaves)
{
    obs::MetricRegistry reg;
    obs::LogHistogram hist;
    for (int i = 1; i <= 100; ++i)
        hist.record(i);
    reg.registerHistogram("gpu0.xlat", &hist);
    std::string json = reg.toJson();
    expectWellFormedJson(json);
    EXPECT_NE(json.find("\"gpu0.xlat.count\""), std::string::npos);
    EXPECT_NE(json.find("\"gpu0.xlat.mean\""), std::string::npos);
    EXPECT_NE(json.find("\"gpu0.xlat.p50\""), std::string::npos);
    EXPECT_NE(json.find("\"gpu0.xlat.p999\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// IntervalSampler: tick alignment on a live event queue.
// ---------------------------------------------------------------------------

TEST(IntervalSampler, RowsAlignToInterval)
{
    sim::EventQueue eq;
    obs::IntervalSampler sampler;
    double depth = 0.0;
    sampler.addColumn("depth", [&depth] { return depth; });

    // Simulation activity out to tick 1000.
    for (sim::Tick t = 100; t <= 1000; t += 100)
        eq.schedule(t, [&depth] { depth += 1.0; });

    sampler.start(eq, 250);
    eq.run();

    // Immediate row at 0, then 250/500/750/1000. The sampler never
    // reschedules past the last simulation event.
    ASSERT_GE(sampler.rows(), 4u);
    for (std::size_t row = 0; row < sampler.rows(); ++row) {
        EXPECT_EQ(sampler.rowTick(row) % 250, 0u) << "row " << row;
        EXPECT_LE(sampler.rowTick(row), 1000u);
    }
    // Probes see the simulation state at the sample tick.
    EXPECT_EQ(sampler.cell(0, 0), 0.0);
    EXPECT_EQ(sampler.cell(2, 0), 5.0); // tick 500: events 100..500 ran
}

TEST(IntervalSampler, DoesNotBlockQueueDrain)
{
    sim::EventQueue eq;
    obs::IntervalSampler sampler;
    sampler.addColumn("one", [] { return 1.0; });
    eq.schedule(10, [] {});
    sampler.start(eq, 5);
    eq.run(); // must terminate: sampler stops rescheduling when alone
    EXPECT_LE(sampler.rowTick(sampler.rows() - 1), 15u);
}

TEST(IntervalSampler, CsvAndJsonShapes)
{
    sim::EventQueue eq;
    obs::IntervalSampler sampler;
    obs::MetricRegistry reg;
    reg.registerGauge("q.depth", [] { return 2.0; });
    sampler.addRegistryColumn(reg, "q.depth");
    eq.schedule(20, [] {});
    sampler.start(eq, 10);
    eq.run();

    std::ostringstream csv;
    sampler.writeCsv(csv);
    std::istringstream lines(csv.str());
    std::string header;
    std::getline(lines, header);
    EXPECT_EQ(header, "tick,q.depth");
    std::string row;
    std::size_t rows = 0;
    while (std::getline(lines, row)) {
        ++rows;
        EXPECT_NE(row.find(",2"), std::string::npos);
    }
    EXPECT_EQ(rows, sampler.rows());

    std::ostringstream jsonOs;
    sampler.writeJson(jsonOs);
    expectWellFormedJson(jsonOs.str());
    EXPECT_NE(jsonOs.str().find("\"q.depth\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: full-system run with observability on.
// ---------------------------------------------------------------------------

namespace {

wl::SyntheticSpec
tinySpec()
{
    wl::SyntheticSpec spec;
    spec.name = "obs-e2e";
    spec.numCtas = 16;
    spec.memOpsPerCta = 30;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 32, .pattern = wl::Pattern::Random,
         .shareDegree = 2, .weight = 0.4, .writeFrac = 0.2, .reuse = 2},
        {.name = "own", .pages = 96, .weight = 0.6, .reuse = 2},
    };
    return spec;
}

cfg::SystemConfig
obsConfig()
{
    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 2;
    config.cusPerGpu = 4;
    config.wavefrontSlotsPerCu = 2;
    config.obs.spans = true;
    config.obs.sampleInterval = 2000;
    return config;
}

} // namespace

#if TRANSFW_OBS
TEST(ObsEndToEnd, XlatSpanDurationMatchesBreakdownSum)
{
    // Acceptance criterion: the per-request breakdown sum (carried in
    // the "xlat" span's arg) equals the end-to-end measured latency
    // (the span's duration) within one tick. Baseline config: the
    // serial translation path accounts every cycle exactly once.
    wl::SyntheticWorkload workload(tinySpec());
    sys::MultiGpuSystem system(obsConfig(), workload);
    system.run();

    const obs::SpanRecorder &rec = system.obs().spans;
    EXPECT_EQ(rec.dropped(), 0u);
    std::size_t xlatSpans = 0;
    for (const obs::Span &s : rec.spans()) {
        if (std::string(s.name) != "xlat")
            continue;
        ++xlatSpans;
        ASSERT_GE(s.arg, 0.0) << "xlat span missing breakdown total";
        double dur = static_cast<double>(s.end - s.start);
        EXPECT_NEAR(dur, s.arg, 1.0)
            << "request " << s.tid << " on gpu " << s.pid << " vpn 0x"
            << std::hex << s.vpn;
    }
    EXPECT_GT(xlatSpans, 0u);
}

TEST(ObsEndToEnd, PhaseSpansNestInsideRootSpan)
{
    // Every recorded phase of request (pid, tid) must fit inside that
    // request's "xlat" root span (requests are serial per wavefront
    // slot, but ids are unique per request so there is exactly one
    // root per (pid, tid) epoch here).
    wl::SyntheticWorkload workload(tinySpec());
    sys::MultiGpuSystem system(obsConfig(), workload);
    system.run();

    const std::vector<obs::Span> &spans = system.obs().spans.spans();
    std::map<std::pair<std::uint32_t, std::uint64_t>,
             std::vector<const obs::Span *>>
        byRequest;
    for (const obs::Span &s : spans)
        byRequest[{s.pid, s.tid}].push_back(&s);

    std::size_t checkedChildren = 0;
    for (const auto &[key, group] : byRequest) {
        if (key.first == obs::SpanRecorder::kHostPid)
            continue; // driver batch lanes have no xlat root
        const obs::Span *root = nullptr;
        for (const obs::Span *s : group)
            if (std::string(s->name) == "xlat")
                root = s;
        if (!root)
            continue;
        for (const obs::Span *s : group) {
            if (s == root)
                continue;
            EXPECT_LE(s->end, root->end)
                << s->name << " overruns xlat for tid " << key.second;
            EXPECT_GE(s->start, root->start)
                << s->name << " precedes xlat for tid " << key.second;
            EXPECT_LE(s->start, s->end) << s->name << " is negative";
            ++checkedChildren;
        }
    }
    EXPECT_GT(checkedChildren, 0u);
}
#endif // TRANSFW_OBS

TEST(ObsEndToEnd, MetricsRegistryCoversComponents)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = obsConfig();
    sys::MultiGpuSystem system(config, workload);
    sys::SimResults r = system.run();

    const obs::MetricRegistry &reg = system.obs().metrics;
    // Hierarchical keys from every layer of the translation path.
    for (const char *name :
         {"gpu0.accesses", "gpu0.gmmu.localWalks", "gpu0.gmmu.pwc.hitRate",
          "gpu0.l2tlb.hitRate", "gpu1.gmmu.queueDepth", "host.mmu.faults",
          "host.mmu.queueAboveTrigger", "host.mmu.tlb.hitRate",
          "host.migration.migrations", "sim.farFaults", "sim.tick"}) {
        EXPECT_TRUE(reg.has(name)) << name;
    }
    // Gauges agree with the collected results.
    EXPECT_EQ(reg.value("sim.farFaults"), static_cast<double>(r.farFaults));
    EXPECT_EQ(reg.value("sim.tick"), static_cast<double>(r.execTime));
    double accesses =
        reg.value("gpu0.accesses") + reg.value("gpu1.accesses");
    EXPECT_EQ(accesses, static_cast<double>(r.pageAccesses));

    std::string json = reg.toJson();
    expectWellFormedJson(json);
    EXPECT_NE(json.find("\"gpu0.xlat.p99\""), std::string::npos);
}

TEST(ObsEndToEnd, SamplerTicksAlignAndTrackQueue)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = obsConfig();
    sys::MultiGpuSystem system(config, workload);
    sys::SimResults r = system.run();

    const obs::IntervalSampler &sampler = system.obs().sampler;
    ASSERT_GT(sampler.rows(), 1u);
    ASSERT_GT(sampler.columns(), 0u);
    for (std::size_t row = 0; row < sampler.rows(); ++row) {
        EXPECT_EQ(sampler.rowTick(row) % config.obs.sampleInterval, 0u);
        EXPECT_LE(sampler.rowTick(row), r.execTime);
    }
    // Columns include the headline occupancy/health probes.
    std::vector<std::string> cols;
    for (std::size_t c = 0; c < sampler.columns(); ++c)
        cols.push_back(sampler.columnName(c));
    for (const char *want :
         {"host.mmu.queueDepth", "host.mmu.queueAboveTrigger",
          "gpu0.gmmu.queueDepth", "gpu0.l2tlb.hitRate"}) {
        EXPECT_NE(std::find(cols.begin(), cols.end(), want), cols.end())
            << want;
    }
    // Hit rates stay within [0, 1] in every sample.
    for (std::size_t c = 0; c < sampler.columns(); ++c) {
        if (cols[c].find("hitRate") == std::string::npos &&
            cols[c].find("loadFactor") == std::string::npos)
            continue;
        for (std::size_t row = 0; row < sampler.rows(); ++row) {
            EXPECT_GE(sampler.cell(row, c), 0.0);
            EXPECT_LE(sampler.cell(row, c), 1.0);
        }
    }
}

TEST(ObsEndToEnd, TransFwModeRecordsForwardingSpans)
{
    // Under Trans-FW, the registry exposes PRT/FT load and the trace
    // (possibly empty with spans compiled out) still exports cleanly.
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = obsConfig();
    cfg::SystemConfig fw = sys::transFwConfig();
    config.transFw = fw.transFw;
    sys::MultiGpuSystem system(config, workload);
    system.run();

    EXPECT_TRUE(system.obs().metrics.has("host.ft.loadFactor"));
    EXPECT_TRUE(system.obs().metrics.has("gpu0.prt.loadFactor"));
    EXPECT_TRUE(system.obs().metrics.has("host.mmu.forwards"));

    std::ostringstream os;
    system.obs().spans.writeChromeTrace(os);
    expectWellFormedJson(os.str());
}

TEST(ObsEndToEnd, DisabledByDefaultCostsNothing)
{
    wl::SyntheticWorkload workload(tinySpec());
    cfg::SystemConfig config = obsConfig();
    config.obs.spans = false;
    config.obs.sampleInterval = 0;
    sys::MultiGpuSystem system(config, workload);
    system.run();
    EXPECT_TRUE(system.obs().spans.spans().empty());
    EXPECT_EQ(system.obs().sampler.rows(), 0u);
    // The registry still answers (gauges are free), and results are
    // identical to an instrumented run.
    EXPECT_TRUE(system.obs().metrics.has("sim.tick"));

    cfg::SystemConfig instrumented = obsConfig();
    sys::MultiGpuSystem system2(instrumented, workload);
    sys::SimResults a = system2.run();
    sys::MultiGpuSystem system3(config, workload);
    sys::SimResults b = system3.run();
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.farFaults, b.farFaults);
}

TEST(ObsEndToEnd, PercentilesInResults)
{
    wl::SyntheticWorkload workload(tinySpec());
    sys::SimResults r = sys::runWorkload(workload, obsConfig());
    ASSERT_GT(r.xlatLatencyHist.count(), 0u);
    double p50 = r.xlatLatencyHist.quantile(0.50);
    double p99 = r.xlatLatencyHist.quantile(0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
    // The mean sits between the histogram extremes and tracks the
    // Distribution-based average already reported.
    EXPECT_NEAR(r.xlatLatencyHist.mean(), r.avgXlatLatency,
                std::max(1.0, 0.01 * r.avgXlatLatency));
}
