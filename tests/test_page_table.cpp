#include <gtest/gtest.h>

#include "mem/page_table.hpp"

using namespace transfw::mem;

namespace {

PageTable
makeTable(int levels = 5, unsigned shift = kSmallPageShift)
{
    return PageTable(PagingGeometry{levels, shift});
}

} // namespace

TEST(PageTable, MapLookupUnmap)
{
    PageTable pt = makeTable();
    EXPECT_EQ(pt.lookup(42), nullptr);
    pt.map(42, PageInfo{7, 1, 0x2, true, false});
    const PageInfo *info = pt.lookup(42);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->ppn, 7u);
    EXPECT_EQ(info->owner, 1);
    EXPECT_EQ(pt.mappedPages(), 1u);
    EXPECT_TRUE(pt.unmap(42));
    EXPECT_EQ(pt.lookup(42), nullptr);
    EXPECT_FALSE(pt.unmap(42));
    EXPECT_EQ(pt.mappedPages(), 0u);
}

TEST(PageTable, MapOverwriteKeepsCount)
{
    PageTable pt = makeTable();
    pt.map(10, PageInfo{1, 0, 1, true, false});
    pt.map(10, PageInfo{2, 1, 2, false, false});
    EXPECT_EQ(pt.mappedPages(), 1u);
    EXPECT_EQ(pt.lookup(10)->ppn, 2u);
    EXPECT_FALSE(pt.lookup(10)->writable);
}

TEST(PageTable, FullWalkAccessCount)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    WalkResult walk = pt.walk(0x12345);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 5); // five levels, no PW-cache help
    EXPECT_EQ(walk.info.ppn, 9u);
}

TEST(PageTable, WalkWithPwcHitSkipsLevels)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    // Hit at entry level 2 leaves only the leaf PTE read.
    WalkResult walk = pt.walk(0x12345, 2);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 1);
    // Hit at level 3 -> L2 node + leaf.
    walk = pt.walk(0x12345, 3);
    EXPECT_EQ(walk.accesses, 2);
    // Hit at the top level -> 4 accesses.
    walk = pt.walk(0x12345, 5);
    EXPECT_EQ(walk.accesses, 4);
}

TEST(PageTable, EarlyTerminationOnUnmappedRegion)
{
    PageTable pt = makeTable();
    pt.map(0, PageInfo{1, 0, 1, true, false});
    // A VA in a totally different top-level subtree faults after the
    // very first node access.
    Vpn far = Vpn{1} << 36;
    WalkResult walk = pt.walk(far);
    EXPECT_FALSE(walk.present);
    EXPECT_EQ(walk.accesses, 1);
}

TEST(PageTable, FaultAfterUnmapStillWalksDeep)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    pt.unmap(0x12345);
    // Intermediate nodes persist, so the walk reaches the leaf level
    // before discovering the missing PTE.
    WalkResult walk = pt.walk(0x12345);
    EXPECT_FALSE(walk.present);
    EXPECT_EQ(walk.accesses, 5);
    EXPECT_EQ(walk.deepestFilled, 2);
}

TEST(PageTable, DeepestFilledTracksPresentLevels)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    WalkResult walk = pt.walk(0x12345);
    EXPECT_EQ(walk.deepestFilled, 2); // L2 entry was present
}

TEST(PageTable, FourLevelWalk)
{
    PageTable pt = makeTable(4);
    pt.map(0xABCDE, PageInfo{3, 2, 4, true, false});
    WalkResult walk = pt.walk(0xABCDE);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 4);
    walk = pt.walk(0xABCDE, 2);
    EXPECT_EQ(walk.accesses, 1);
}

TEST(PageTable, LargePageWalk)
{
    PageTable pt = makeTable(5, kLargePageShift);
    pt.map(0x777, PageInfo{11, 0, 1, true, false});
    WalkResult walk = pt.walk(0x777);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 4); // leaf lives at level 2
    walk = pt.walk(0x777, 3);
    EXPECT_EQ(walk.accesses, 1);
}

TEST(PageTable, ManyMappingsDistinct)
{
    PageTable pt = makeTable();
    for (Vpn vpn = 0; vpn < 2000; ++vpn)
        pt.map(vpn * 513, PageInfo{vpn, 0, 1, true, false});
    EXPECT_EQ(pt.mappedPages(), 2000u);
    for (Vpn vpn = 0; vpn < 2000; ++vpn) {
        const PageInfo *info = pt.lookup(vpn * 513);
        ASSERT_NE(info, nullptr);
        EXPECT_EQ(info->ppn, vpn);
    }
}

/** Walk access counts for every (levels, pageShift) geometry. */
class PageTableGeo
    : public ::testing::TestWithParam<std::pair<int, unsigned>>
{};

TEST_P(PageTableGeo, WalkAccessesMatchGeometry)
{
    auto [levels, shift] = GetParam();
    PagingGeometry geo{levels, shift};
    PageTable pt(geo);
    pt.map(0x321, PageInfo{1, 0, 1, true, false});
    WalkResult walk = pt.walk(0x321);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, geo.walkAccesses());
    // Every cacheable hit level shortens the walk consistently.
    for (int k = geo.lowestCachedLevel(); k <= levels; ++k) {
        WalkResult w = pt.walk(0x321, k);
        EXPECT_TRUE(w.present);
        EXPECT_EQ(w.accesses, k - geo.leafLevel());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PageTableGeo,
    ::testing::Values(std::pair{5, transfw::mem::kSmallPageShift},
                      std::pair{4, transfw::mem::kSmallPageShift},
                      std::pair{5, transfw::mem::kLargePageShift},
                      std::pair{4, transfw::mem::kLargePageShift}));
