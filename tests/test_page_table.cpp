#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "mem/page_table.hpp"
#include "sim/random.hpp"

using namespace transfw::mem;

namespace {

PageTable
makeTable(int levels = 5, unsigned shift = kSmallPageShift)
{
    return PageTable(PagingGeometry{levels, shift});
}

/**
 * Node-hash-map radix table with the pre-refactor walk/map/unmap
 * semantics, used as the differential reference for the flat-node
 * layout: both must agree on every WalkResult field for every
 * operation stream.
 */
class NodeMapTable
{
  public:
    explicit NodeMapTable(PagingGeometry geo) : geo_(geo) {}

    void
    map(Vpn vpn, const PageInfo &info)
    {
        Node *node = &root_;
        for (int level = geo_.levels; level > geo_.leafLevel(); --level) {
            auto &child = node->children[geo_.index(vpn, level)];
            if (!child)
                child = std::make_unique<Node>();
            node = child.get();
        }
        node->leaves.insert_or_assign(geo_.index(vpn, geo_.leafLevel()),
                                      info);
    }

    /** Do the interior nodes above @p hit's entry point exist? (The
     *  simulator only claims PWC hits for previously walked prefixes;
     *  the flat table panics on the impossible case.) */
    bool
    prefixPresent(Vpn vpn, int pwc_hit_level) const
    {
        // The free (uncounted) descent of walk(vpn, hit) follows child
        // links at levels [hit, levels]; the walk itself resumes at
        // hit - 1.
        const Node *node = &root_;
        for (int l = geo_.levels; l >= pwc_hit_level; --l) {
            auto it = node->children.find(geo_.index(vpn, l));
            if (it == node->children.end())
                return false;
            node = it->second.get();
        }
        return true;
    }

    bool
    unmap(Vpn vpn)
    {
        Node *node = &root_;
        for (int level = geo_.levels; level > geo_.leafLevel(); --level) {
            auto it = node->children.find(geo_.index(vpn, level));
            if (it == node->children.end())
                return false;
            node = it->second.get();
        }
        return node->leaves.erase(geo_.index(vpn, geo_.leafLevel())) != 0;
    }

    WalkResult
    walk(Vpn vpn, int pwc_hit_level = 0) const
    {
        WalkResult res;
        int start_level = pwc_hit_level ? pwc_hit_level - 1 : geo_.levels;
        const Node *node = &root_;
        for (int l = geo_.levels; l > start_level; --l) {
            auto it = node->children.find(geo_.index(vpn, l));
            if (it == node->children.end())
                return res;
            node = it->second.get();
        }
        res.deepestFilled = pwc_hit_level;
        for (int level = start_level; level >= geo_.leafLevel(); --level) {
            ++res.accesses;
            if (level == geo_.leafLevel()) {
                auto it = node->leaves.find(geo_.index(vpn, level));
                if (it == node->leaves.end())
                    return res;
                res.present = true;
                res.info = it->second;
                return res;
            }
            auto it = node->children.find(geo_.index(vpn, level));
            if (it == node->children.end())
                return res;
            res.deepestFilled = level;
            node = it->second.get();
        }
        return res;
    }

  private:
    struct Node
    {
        std::unordered_map<unsigned, std::unique_ptr<Node>> children;
        std::unordered_map<unsigned, PageInfo> leaves;
    };

    PagingGeometry geo_;
    Node root_;
};

void
expectSameWalk(const WalkResult &flat, const WalkResult &ref, Vpn vpn)
{
    ASSERT_EQ(flat.present, ref.present) << vpn;
    ASSERT_EQ(flat.accesses, ref.accesses) << vpn;
    ASSERT_EQ(flat.deepestFilled, ref.deepestFilled) << vpn;
    if (ref.present) {
        ASSERT_EQ(flat.info.ppn, ref.info.ppn) << vpn;
        ASSERT_EQ(flat.info.owner, ref.info.owner) << vpn;
        ASSERT_EQ(flat.info.replicaMask, ref.info.replicaMask) << vpn;
        ASSERT_EQ(flat.info.writable, ref.info.writable) << vpn;
        ASSERT_EQ(flat.info.remote, ref.info.remote) << vpn;
    }
}

} // namespace

TEST(PageTable, MapLookupUnmap)
{
    PageTable pt = makeTable();
    EXPECT_EQ(pt.lookup(42), nullptr);
    pt.map(42, PageInfo{7, 1, 0x2, true, false});
    const PageInfo *info = pt.lookup(42);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->ppn, 7u);
    EXPECT_EQ(info->owner, 1);
    EXPECT_EQ(pt.mappedPages(), 1u);
    EXPECT_TRUE(pt.unmap(42));
    EXPECT_EQ(pt.lookup(42), nullptr);
    EXPECT_FALSE(pt.unmap(42));
    EXPECT_EQ(pt.mappedPages(), 0u);
}

TEST(PageTable, MapOverwriteKeepsCount)
{
    PageTable pt = makeTable();
    pt.map(10, PageInfo{1, 0, 1, true, false});
    pt.map(10, PageInfo{2, 1, 2, false, false});
    EXPECT_EQ(pt.mappedPages(), 1u);
    EXPECT_EQ(pt.lookup(10)->ppn, 2u);
    EXPECT_FALSE(pt.lookup(10)->writable);
}

TEST(PageTable, FullWalkAccessCount)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    WalkResult walk = pt.walk(0x12345);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 5); // five levels, no PW-cache help
    EXPECT_EQ(walk.info.ppn, 9u);
}

TEST(PageTable, WalkWithPwcHitSkipsLevels)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    // Hit at entry level 2 leaves only the leaf PTE read.
    WalkResult walk = pt.walk(0x12345, 2);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 1);
    // Hit at level 3 -> L2 node + leaf.
    walk = pt.walk(0x12345, 3);
    EXPECT_EQ(walk.accesses, 2);
    // Hit at the top level -> 4 accesses.
    walk = pt.walk(0x12345, 5);
    EXPECT_EQ(walk.accesses, 4);
}

TEST(PageTable, EarlyTerminationOnUnmappedRegion)
{
    PageTable pt = makeTable();
    pt.map(0, PageInfo{1, 0, 1, true, false});
    // A VA in a totally different top-level subtree faults after the
    // very first node access.
    Vpn far = Vpn{1} << 36;
    WalkResult walk = pt.walk(far);
    EXPECT_FALSE(walk.present);
    EXPECT_EQ(walk.accesses, 1);
}

TEST(PageTable, FaultAfterUnmapStillWalksDeep)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    pt.unmap(0x12345);
    // Intermediate nodes persist, so the walk reaches the leaf level
    // before discovering the missing PTE.
    WalkResult walk = pt.walk(0x12345);
    EXPECT_FALSE(walk.present);
    EXPECT_EQ(walk.accesses, 5);
    EXPECT_EQ(walk.deepestFilled, 2);
}

TEST(PageTable, DeepestFilledTracksPresentLevels)
{
    PageTable pt = makeTable();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    WalkResult walk = pt.walk(0x12345);
    EXPECT_EQ(walk.deepestFilled, 2); // L2 entry was present
}

TEST(PageTable, FourLevelWalk)
{
    PageTable pt = makeTable(4);
    pt.map(0xABCDE, PageInfo{3, 2, 4, true, false});
    WalkResult walk = pt.walk(0xABCDE);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 4);
    walk = pt.walk(0xABCDE, 2);
    EXPECT_EQ(walk.accesses, 1);
}

TEST(PageTable, LargePageWalk)
{
    PageTable pt = makeTable(5, kLargePageShift);
    pt.map(0x777, PageInfo{11, 0, 1, true, false});
    WalkResult walk = pt.walk(0x777);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, 4); // leaf lives at level 2
    walk = pt.walk(0x777, 3);
    EXPECT_EQ(walk.accesses, 1);
}

TEST(PageTable, ManyMappingsDistinct)
{
    PageTable pt = makeTable();
    for (Vpn vpn = 0; vpn < 2000; ++vpn)
        pt.map(vpn * 513, PageInfo{vpn, 0, 1, true, false});
    EXPECT_EQ(pt.mappedPages(), 2000u);
    for (Vpn vpn = 0; vpn < 2000; ++vpn) {
        const PageInfo *info = pt.lookup(vpn * 513);
        ASSERT_NE(info, nullptr);
        EXPECT_EQ(info->ppn, vpn);
    }
}

TEST(PageTable, NodeCountGrowsOnceAndPersists)
{
    PageTable pt = makeTable();
    std::size_t empty = pt.nodeCount();
    pt.map(0x12345, PageInfo{9, 0, 1, true, false});
    std::size_t afterFirst = pt.nodeCount();
    EXPECT_GT(afterFirst, empty);
    // A neighbour in the same leaf reuses the whole node path.
    pt.map(0x12346, PageInfo{10, 0, 1, true, false});
    EXPECT_EQ(pt.nodeCount(), afterFirst);
    // Remap and unmap never free nodes (the flat pools only grow).
    pt.map(0x12345, PageInfo{11, 0, 1, false, false});
    pt.unmap(0x12345);
    EXPECT_EQ(pt.nodeCount(), afterFirst);
}

/**
 * Randomized differential: the flat-node table must agree with the
 * node-hash-map reference on every walk field across map / remap /
 * unmap / walk streams, including PWC-shortened walks.
 */
TEST(PageTable, DifferentialFuzzAgainstNodeMapReference)
{
    for (auto [levels, shift] :
         {std::pair{5, kSmallPageShift}, std::pair{4, kSmallPageShift},
          std::pair{5, kLargePageShift}}) {
        PagingGeometry geo{levels, shift};
        PageTable flat(geo);
        NodeMapTable ref(geo);
        transfw::sim::Rng rng(0xBADC0FFE + static_cast<unsigned>(levels));

        for (int op = 0; op < 20000; ++op) {
            // Clustered keyspace: a few dense regions plus far strays,
            // so sibling leaves, shared interior nodes and one-entry
            // subtrees all occur.
            Vpn vpn = rng.chance(0.8)
                          ? rng.range(4) * (Vpn{1} << 30) + rng.range(2048)
                          : rng.next() & ((Vpn{1} << 44) - 1);
            switch (rng.range(4)) {
            case 0: {
                PageInfo info{rng.next() & 0xFFFFF,
                              static_cast<DeviceId>(rng.range(5)),
                              static_cast<std::uint32_t>(rng.range(16)),
                              rng.chance(0.7), rng.chance(0.2)};
                flat.map(vpn, info);
                ref.map(vpn, info);
                break;
            }
            case 1:
                ASSERT_EQ(flat.unmap(vpn), ref.unmap(vpn)) << vpn;
                break;
            default: {
                int hit = static_cast<int>(
                    rng.range(static_cast<std::uint64_t>(levels) + 1));
                if (hit != 0 && (hit <= geo.leafLevel() ||
                                 !ref.prefixPresent(vpn, hit)))
                    hit = 0; // PWC hits only exist for walked prefixes
                expectSameWalk(flat.walk(vpn, hit), ref.walk(vpn, hit),
                               vpn);
                break;
            }
            }
        }
    }
}

/** Walk access counts for every (levels, pageShift) geometry. */
class PageTableGeo
    : public ::testing::TestWithParam<std::pair<int, unsigned>>
{};

TEST_P(PageTableGeo, WalkAccessesMatchGeometry)
{
    auto [levels, shift] = GetParam();
    PagingGeometry geo{levels, shift};
    PageTable pt(geo);
    pt.map(0x321, PageInfo{1, 0, 1, true, false});
    WalkResult walk = pt.walk(0x321);
    EXPECT_TRUE(walk.present);
    EXPECT_EQ(walk.accesses, geo.walkAccesses());
    // Every cacheable hit level shortens the walk consistently.
    for (int k = geo.lowestCachedLevel(); k <= levels; ++k) {
        WalkResult w = pt.walk(0x321, k);
        EXPECT_TRUE(w.present);
        EXPECT_EQ(w.accesses, k - geo.leafLevel());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PageTableGeo,
    ::testing::Values(std::pair{5, transfw::mem::kSmallPageShift},
                      std::pair{4, transfw::mem::kSmallPageShift},
                      std::pair{5, transfw::mem::kLargePageShift},
                      std::pair{4, transfw::mem::kLargePageShift}));
