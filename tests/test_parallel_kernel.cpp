#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

/** Sharing-heavy workload that exercises faults, migrations, and
 *  remote traffic on every lane. */
wl::SyntheticSpec
laneSpec(const char *name = "lanes")
{
    wl::SyntheticSpec spec;
    spec.name = name;
    spec.numCtas = 48;
    spec.memOpsPerCta = 30;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 48, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.4, .reuse = 2},
        {.name = "own", .pages = 192, .weight = 0.5, .reuse = 2},
    };
    return spec;
}

/** Every deterministic SimResults field must match bit-for-bit. Wall
 *  clock fields (hostWallSeconds, hostEventsPerSec, hostProfile) are
 *  the only ones allowed to differ between runs. */
void
expectIdentical(const sys::SimResults &a, const sys::SimResults &b)
{
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.memOps, b.memOps);
    EXPECT_EQ(a.pageAccesses, b.pageAccesses);
    EXPECT_EQ(a.l2TlbMisses, b.l2TlbMisses);
    EXPECT_EQ(a.farFaults, b.farFaults);

    EXPECT_EQ(a.xlat.gmmuQueue, b.xlat.gmmuQueue);
    EXPECT_EQ(a.xlat.gmmuMem, b.xlat.gmmuMem);
    EXPECT_EQ(a.xlat.hostQueue, b.xlat.hostQueue);
    EXPECT_EQ(a.xlat.hostMem, b.xlat.hostMem);
    EXPECT_EQ(a.xlat.migration, b.xlat.migration);
    EXPECT_EQ(a.xlat.network, b.xlat.network);
    EXPECT_EQ(a.xlat.other, b.xlat.other);
    EXPECT_EQ(a.avgXlatLatency, b.avgXlatLatency);
    EXPECT_EQ(a.xlatLatencyHist.count(), b.xlatLatencyHist.count());
    EXPECT_EQ(a.xlatLatencyHist.quantile(0.99),
              b.xlatLatencyHist.quantile(0.99));

    EXPECT_EQ(a.l1HitRate, b.l1HitRate);
    EXPECT_EQ(a.l2HitRate, b.l2HitRate);
    EXPECT_EQ(a.hostTlbHitRate, b.hostTlbHitRate);
    EXPECT_EQ(a.gmmuQueueWaitMean, b.gmmuQueueWaitMean);
    EXPECT_EQ(a.hostQueueWaitMean, b.hostQueueWaitMean);
    EXPECT_EQ(a.gmmuQueueOverflows, b.gmmuQueueOverflows);
    EXPECT_EQ(a.hostQueueOverflows, b.hostQueueOverflows);

    for (std::size_t i = 0; i < a.sharingAccesses.buckets(); ++i)
        EXPECT_EQ(a.sharingAccesses.bucket(i),
                  b.sharingAccesses.bucket(i));
    EXPECT_EQ(a.sharedPageReads, b.sharedPageReads);
    EXPECT_EQ(a.sharedPageWrites, b.sharedPageWrites);

    EXPECT_EQ(a.shortCircuits, b.shortCircuits);
    EXPECT_EQ(a.prtLookups, b.prtLookups);
    EXPECT_EQ(a.prtHits, b.prtHits);
    EXPECT_EQ(a.ftLookups, b.ftLookups);
    EXPECT_EQ(a.ftHits, b.ftHits);
    EXPECT_EQ(a.forwards, b.forwards);
    EXPECT_EQ(a.forwardSuccess, b.forwardSuccess);
    EXPECT_EQ(a.forwardFail, b.forwardFail);
    EXPECT_EQ(a.duplicateWalks, b.duplicateWalks);
    EXPECT_EQ(a.removedFromQueue, b.removedFromQueue);

    EXPECT_EQ(a.gmmuWalkMemAccesses, b.gmmuWalkMemAccesses);
    EXPECT_EQ(a.gmmuRemoteMemAccesses, b.gmmuRemoteMemAccesses);
    EXPECT_EQ(a.hostWalks, b.hostWalks);
    EXPECT_EQ(a.hostWalkMemAccesses, b.hostWalkMemAccesses);

    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.replications, b.replications);
    EXPECT_EQ(a.writeInvalidations, b.writeInvalidations);
    EXPECT_EQ(a.remoteMappings, b.remoteMappings);
    EXPECT_EQ(a.counterMigrations, b.counterMigrations);
    EXPECT_EQ(a.bytesMoved, b.bytesMoved);
    EXPECT_EQ(a.driverBatches, b.driverBatches);
    EXPECT_EQ(a.driverAvgBatchSize, b.driverAvgBatchSize);

#if TRANSFW_OBS
    // Attribution sums are floating point: the relay replay order is
    // fixed (lane index, post order), so even these match exactly.
    for (int f = 0; f < static_cast<int>(obs::LatField::kCount); ++f) {
        EXPECT_EQ(
            a.attribution.fieldTotal(static_cast<obs::LatField>(f)),
            b.attribution.fieldTotal(static_cast<obs::LatField>(f)))
            << "attribution field " << f;
    }
    EXPECT_EQ(a.attribution.requests, b.attribution.requests);
    EXPECT_EQ(a.obsCheckViolations, b.obsCheckViolations);
    EXPECT_EQ(a.obsCheckedRequests, b.obsCheckedRequests);
#endif
    EXPECT_EQ(a.peakEventBacklog, b.peakEventBacklog);
}

} // namespace

TEST(ParallelKernel, LookaheadWindowDerivedFromLinks)
{
    wl::SyntheticWorkload workload(laneSpec());
    cfg::SystemConfig config = sys::baselineConfig();
    sys::MultiGpuSystem system(config, workload);
    // A GPU lane only originates cross-lane traffic on its uplink
    // (control token 2 + propagation); peer links are host-driven.
    EXPECT_EQ(system.lookaheadWindow(), config.hostLink.latency + 2);
    for (int g = 0; g < config.numGpus; ++g)
        EXPECT_EQ(system.laneWindow(g), config.hostLink.latency + 2);
    // Per-lane queues exist and are distinct from the host queue.
    for (int g = 0; g < config.numGpus; ++g)
        EXPECT_NE(&system.gpuEventq(g), &system.eventq());
}

TEST(ParallelKernel, CheapPeerLinksDoNotClampWindow)
{
    // The first lane kernel took min(host, peer) + 2, so NVLink-class
    // peers shrank every window ~3x below what the uplink allows. The
    // adaptive kernel must keep the full uplink bound.
    wl::SyntheticWorkload workload(laneSpec("cheap-peer"));
    cfg::SystemConfig config = sys::baselineConfig();
    config.hostLink.latency = 150;
    config.peerLink.latency = 1;
    sys::MultiGpuSystem system(config, workload);
    EXPECT_EQ(system.lookaheadWindow(), 152u);
}

TEST(ParallelKernel, LaneCountExcludedFromConfigKey)
{
    cfg::SystemConfig serial = sys::baselineConfig();
    cfg::SystemConfig parallel = serial;
    parallel.sim.lanes = 8;
    // The worker count is an execution detail, not a simulated-machine
    // parameter: the ledger key must not fork on it.
    EXPECT_EQ(serial.key(), parallel.key());
}

/** Lane count sweep over the full (policy × mode × transfw) matrix:
 *  every worker count must reproduce the serial kernel bit-for-bit. */
class ParallelMatrix
    : public ::testing::TestWithParam<
          std::tuple<cfg::MigrationPolicy, cfg::FaultMode, bool>>
{};

TEST_P(ParallelMatrix, BitIdenticalToSerial)
{
    auto [policy, mode, transfw] = GetParam();
    wl::SyntheticWorkload workload(laneSpec("matrix"));

    cfg::SystemConfig config = sys::baselineConfig();
    config.cusPerGpu = 6;
    config.migrationPolicy = policy;
    config.faultMode = mode;
    config.transFw.enabled = transfw;

    config.sim.lanes = 0;
    sys::SimResults serial = sys::runWorkload(workload, config);

    for (int lanes : {2, 8}) {
        config.sim.lanes = lanes;
        sys::SimResults parallel = sys::runWorkload(workload, config);
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        expectIdentical(serial, parallel);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ParallelMatrix,
    ::testing::Combine(
        ::testing::Values(cfg::MigrationPolicy::OnTouch,
                          cfg::MigrationPolicy::ReadReplicate,
                          cfg::MigrationPolicy::RemoteMap),
        ::testing::Values(cfg::FaultMode::HostMmu,
                          cfg::FaultMode::UvmDriver),
        ::testing::Bool()));

/** Mailbox/lookahead stress: 1-cycle links shrink the window to its
 *  floor so every segment crosses a barrier, randomized lane counts
 *  catch schedules that accidentally depend on the worker count. */
TEST(ParallelKernel, TinyWindowRandomLaneStress)
{
    wl::SyntheticSpec spec = laneSpec("stress");
    spec.numCtas = 32;
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 4;
    config.cusPerGpu = 4;
    config.hostLink.latency = 1;
    config.peerLink.latency = 1;
    config.transFw.enabled = true;

    sys::MultiGpuSystem probe(config, workload);
    EXPECT_EQ(probe.lookaheadWindow(), 3u);

    config.sim.lanes = 0;
    sys::SimResults serial = sys::runWorkload(workload, config);
    EXPECT_GT(serial.farFaults, 0u);

    std::mt19937 rng(12345);
    std::uniform_int_distribution<int> lane_dist(1, 8);
    for (int trial = 0; trial < 6; ++trial) {
        config.sim.lanes = lane_dist(rng);
        SCOPED_TRACE("trial " + std::to_string(trial) + " lanes=" +
                     std::to_string(config.sim.lanes));
        expectIdentical(serial,
                        sys::runWorkload(workload, config));
    }
}

/** Ring topology routes peer traffic hop-by-hop through host-driven
 *  links — the lane schedule must stay identical there too. */
TEST(ParallelKernel, RingTopologyBitIdentical)
{
    wl::SyntheticWorkload workload(laneSpec("ring"));
    cfg::SystemConfig config = sys::baselineConfig();
    config.peerTopology = ic::Topology::Ring;
    config.transFw.enabled = true;

    config.sim.lanes = 0;
    sys::SimResults serial = sys::runWorkload(workload, config);
    config.sim.lanes = 4;
    expectIdentical(serial, sys::runWorkload(workload, config));
}

/** Features that reach across lanes (sibling-L2 probes, spans) force
 *  one worker but must still run the same windowed schedule. */
TEST(ParallelKernel, CrossLaneFeaturesStayIdentical)
{
    wl::SyntheticWorkload workload(laneSpec("least"));
    cfg::SystemConfig config = sys::baselineConfig();
    config.leastTlb.enabled = true;

    config.sim.lanes = 0;
    sys::SimResults serial = sys::runWorkload(workload, config);
    config.sim.lanes = 8;
    expectIdentical(serial, sys::runWorkload(workload, config));
}

/** Asymmetric link latencies probe both edges of the adaptive bound:
 *  a 1-tick uplink floors every window at 3 ticks no matter how slow
 *  the peers are, and a slow uplink must keep its full window even
 *  when peer links are 1 tick (the case the old min() got wrong). */
TEST(ParallelKernel, AsymmetricLinkLatenciesBitIdentical)
{
    wl::SyntheticSpec spec = laneSpec("asym");
    spec.numCtas = 32;
    wl::SyntheticWorkload workload(spec);

    struct Edge
    {
        sim::Tick host;
        sim::Tick peer;
    };
    for (Edge edge : {Edge{1, 200}, Edge{200, 1}}) {
        cfg::SystemConfig config = sys::baselineConfig();
        config.numGpus = 4;
        config.cusPerGpu = 4;
        config.hostLink.latency = edge.host;
        config.peerLink.latency = edge.peer;
        config.transFw.enabled = true;
        SCOPED_TRACE("host=" + std::to_string(edge.host) +
                     " peer=" + std::to_string(edge.peer));

        sys::MultiGpuSystem probe(config, workload);
        EXPECT_EQ(probe.lookaheadWindow(), edge.host + 2);

        config.sim.lanes = 0;
        sys::SimResults serial = sys::runWorkload(workload, config);
        EXPECT_GT(serial.farFaults, 0u);
        for (int lanes : {1, 3}) {
            config.sim.lanes = lanes;
            SCOPED_TRACE("lanes=" + std::to_string(lanes));
            expectIdentical(serial,
                            sys::runWorkload(workload, config));
        }
    }
}

/** An 8-GPU pod on a ring — the widest config the scaling story is
 *  about — must be bit-identical at every lane count, including lane
 *  counts that leave some workers idle. */
TEST(ParallelKernel, EightGpuPodBitIdentical)
{
    wl::SyntheticSpec spec = laneSpec("pod8");
    spec.numCtas = 64;
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 8;
    config.cusPerGpu = 2;
    config.peerTopology = ic::Topology::Ring;
    config.transFw.enabled = true;

    config.sim.lanes = 0;
    sys::SimResults serial = sys::runWorkload(workload, config);
    EXPECT_GT(serial.farFaults, 0u);

    for (int lanes : {1, 2, 4, 8}) {
        config.sim.lanes = lanes;
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        expectIdentical(serial, sys::runWorkload(workload, config));
    }
}

/** Long-run randomized stress for the race detector: random lane
 *  counts and random per-link latencies (including the 1-tick edge)
 *  against a fixed serial baseline per latency draw. The TSan config
 *  extends the rounds via TRANSFW_STRESS_ROUNDS to soak the worker
 *  pool, mailbox batches, and shared-pool handoffs. */
TEST(ParallelKernel, RandomizedLatencyLaneStress)
{
    int rounds = 3;
    if (const char *env = std::getenv("TRANSFW_STRESS_ROUNDS"))
        rounds = std::max(1, std::atoi(env));

    wl::SyntheticSpec spec = laneSpec("soak");
    spec.numCtas = 24;
    wl::SyntheticWorkload workload(spec);

    std::mt19937 rng(987654321u);
    std::uniform_int_distribution<int> host_lat(1, 200);
    std::uniform_int_distribution<int> peer_lat(1, 80);
    std::uniform_int_distribution<int> lane_dist(1, 8);
    std::bernoulli_distribution edge_case(0.25);

    for (int round = 0; round < rounds; ++round) {
        cfg::SystemConfig config = sys::baselineConfig();
        config.numGpus = 4;
        config.cusPerGpu = 4;
        config.hostLink.latency =
            edge_case(rng) ? 1 : static_cast<sim::Tick>(host_lat(rng));
        config.peerLink.latency =
            edge_case(rng) ? 1 : static_cast<sim::Tick>(peer_lat(rng));
        config.transFw.enabled = (round % 2) == 0;
        SCOPED_TRACE("round " + std::to_string(round) + " host=" +
                     std::to_string(config.hostLink.latency) + " peer=" +
                     std::to_string(config.peerLink.latency));

        config.sim.lanes = 0;
        sys::SimResults serial = sys::runWorkload(workload, config);
        for (int trial = 0; trial < 2; ++trial) {
            config.sim.lanes = lane_dist(rng);
            SCOPED_TRACE("lanes=" + std::to_string(config.sim.lanes));
            expectIdentical(serial,
                            sys::runWorkload(workload, config));
        }
    }
}
