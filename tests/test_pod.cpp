/**
 * Pod-scale scale-out coverage: pinned hop/latency tables for every
 * fabric topology at 8 and 16 GPUs, the lane-affinity orderings the
 * parallel kernel partitions by, the sharded host MMU's routing and
 * accounting invariants, and the differential guarantees — 1-shard
 * mode reproduces the pre-shard simulator bit-for-bit (pinned
 * values), and the lane kernel stays bit-identical to serial with the
 * shard crossbar in the loop.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "interconnect/network.hpp"
#include "transfw/ft_cluster.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

ic::Network
makeNet(sim::EventQueue &eq, int gpus, ic::Topology topo,
        int mesh_cols = 0, int radix = 8)
{
    return ic::Network(eq, gpus, ic::LinkConfig{}, ic::LinkConfig{},
                       topo, mesh_cols, radix);
}

} // namespace

// --- pinned hop-count / latency tables ---------------------------------

TEST(PodTopology, RingHopTable8)
{
    sim::EventQueue eq;
    ic::Network net = makeNet(eq, 8, ic::Topology::Ring);
    EXPECT_EQ(net.peerHops(0, 1), 1);
    EXPECT_EQ(net.peerHops(0, 4), 4);
    EXPECT_EQ(net.peerHops(0, 7), 1); // wraparound
    EXPECT_EQ(net.peerHops(5, 1), 4);
    EXPECT_EQ(net.peerLatency(0, 4), 4 * 150u);
    EXPECT_EQ(net.fabricLinkCount(), 16u); // 8 edges x 2 directions
}

TEST(PodTopology, RingHopTable16)
{
    sim::EventQueue eq;
    ic::Network net = makeNet(eq, 16, ic::Topology::Ring);
    EXPECT_EQ(net.peerHops(0, 8), 8); // opposite side
    EXPECT_EQ(net.peerHops(0, 15), 1);
    EXPECT_EQ(net.peerHops(3, 11), 8);
    EXPECT_EQ(net.peerHops(0, 5), 5);
    EXPECT_EQ(net.peerHops(0, 11), 5); // shorter way around
    EXPECT_EQ(net.peerLatency(0, 8), 8 * 150u);
    EXPECT_EQ(net.fabricLinkCount(), 32u);
}

TEST(PodTopology, MeshHopTable8)
{
    // 8 GPUs default to a 3-wide grid: rows {0,1,2} {3,4,5} {6,7}.
    sim::EventQueue eq;
    ic::Network net = makeNet(eq, 8, ic::Topology::Mesh2D);
    EXPECT_EQ(net.meshCols(), 3);
    EXPECT_EQ(net.peerHops(0, 1), 1);
    EXPECT_EQ(net.peerHops(0, 4), 2);
    EXPECT_EQ(net.peerHops(0, 7), 3);
    EXPECT_EQ(net.peerHops(2, 6), 4); // corner to corner
    // Ragged last row: the (2,2) grid slot does not exist, so 6 -> 5
    // detours through row 1 but still takes the Manhattan distance.
    EXPECT_EQ(net.peerHops(6, 5), 3);
    EXPECT_EQ(net.peerHops(5, 7), 2);
    EXPECT_EQ(net.peerLatency(2, 6), 4 * 150u);
}

TEST(PodTopology, MeshHopTable16)
{
    // 16 GPUs: a full 4x4 grid, hop count == Manhattan distance.
    sim::EventQueue eq;
    ic::Network net = makeNet(eq, 16, ic::Topology::Mesh2D);
    EXPECT_EQ(net.meshCols(), 4);
    EXPECT_EQ(net.peerHops(0, 3), 3);
    EXPECT_EQ(net.peerHops(0, 12), 3);
    EXPECT_EQ(net.peerHops(0, 15), 6); // corner to corner
    EXPECT_EQ(net.peerHops(5, 10), 2);
    EXPECT_EQ(net.peerHops(3, 12), 6);
    EXPECT_EQ(net.peerLatency(0, 15), 6 * 150u);
    // 2 * 4 * 3 undirected grid edges, one Link per direction.
    EXPECT_EQ(net.fabricLinkCount(), 48u);
}

TEST(PodTopology, SwitchHopTable8and16)
{
    sim::EventQueue eq;
    // 8 GPUs at radix 8: one leaf, every pair is GPU->leaf->GPU.
    ic::Network one_leaf = makeNet(eq, 8, ic::Topology::Switch);
    EXPECT_EQ(one_leaf.peerHops(0, 7), 2);
    EXPECT_EQ(one_leaf.peerHops(3, 4), 2);
    EXPECT_EQ(one_leaf.peerLatency(0, 7), 2 * 150u);

    // 16 GPUs at radix 8: two leaves under a root. Same-leaf pairs
    // stay at 2 hops; cross-leaf pairs climb through the root.
    ic::Network two_leaves = makeNet(eq, 16, ic::Topology::Switch);
    EXPECT_EQ(two_leaves.peerHops(0, 7), 2);
    EXPECT_EQ(two_leaves.peerHops(8, 15), 2);
    EXPECT_EQ(two_leaves.peerHops(0, 8), 4);
    EXPECT_EQ(two_leaves.peerHops(7, 15), 4);
    EXPECT_EQ(two_leaves.peerLatency(0, 8), 4 * 150u);
    // 16 GPU<->leaf links + 2 leaf<->root links, per direction.
    EXPECT_EQ(two_leaves.fabricLinkCount(), 36u);

    // Radix 4 splits 16 GPUs over 4 leaves.
    ic::Network radix4 = makeNet(eq, 16, ic::Topology::Switch, 0, 4);
    EXPECT_EQ(radix4.peerHops(0, 3), 2);
    EXPECT_EQ(radix4.peerHops(0, 4), 4);
    EXPECT_EQ(radix4.peerHops(12, 15), 2);
}

TEST(PodTopology, LaneAffinityOrderPerTopology)
{
    sim::EventQueue eq;
    // Identity for all-to-all, ring, and switch.
    for (ic::Topology topo : {ic::Topology::AllToAll, ic::Topology::Ring,
                              ic::Topology::Switch}) {
        ic::Network net = makeNet(eq, 8, topo);
        std::vector<int> order = net.laneAffinityOrder();
        ASSERT_EQ(order.size(), 8u);
        for (int g = 0; g < 8; ++g)
            EXPECT_EQ(order[static_cast<std::size_t>(g)], g);
    }
    // Mesh: boustrophedon snake — consecutive entries are always grid
    // neighbours, so block-partitioned lane groups stay compact.
    ic::Network mesh = makeNet(eq, 16, ic::Topology::Mesh2D);
    std::vector<int> expected = {0, 1, 2,  3,  7,  6,  5,  4,
                                 8, 9, 10, 11, 15, 14, 13, 12};
    EXPECT_EQ(mesh.laneAffinityOrder(), expected);
    for (std::size_t i = 0; i + 1 < expected.size(); ++i)
        EXPECT_EQ(mesh.peerHops(expected[i], expected[i + 1]), 1);

    // Ragged mesh (8 GPUs, 3 cols) still yields a permutation of all
    // GPUs with unit-hop steps.
    ic::Network ragged = makeNet(eq, 8, ic::Topology::Mesh2D);
    std::vector<int> order = ragged.laneAffinityOrder();
    ASSERT_EQ(order.size(), 8u);
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (int g = 0; g < 8; ++g)
        EXPECT_EQ(sorted[static_cast<std::size_t>(g)], g);
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
        EXPECT_EQ(ragged.peerHops(order[i], order[i + 1]), 1);
}

TEST(PodTopology, Ring64LinkBudget)
{
    // The acceptance pin: a 64-GPU ring allocates exactly its 128
    // directed fabric links — per-edge allocation, not N^2.
    sim::EventQueue eq;
    ic::Network net = makeNet(eq, 64, ic::Topology::Ring);
    EXPECT_EQ(net.fabricLinkCount(), 128u);
    EXPECT_EQ(net.peerHops(0, 32), 32);
    // All-to-all at the same size really is dense: 64 * 63 links.
    ic::Network dense = makeNet(eq, 64, ic::Topology::AllToAll);
    EXPECT_EQ(dense.fabricLinkCount(), 64u * 63u);
}

// --- FtCluster routing / coherence -------------------------------------

TEST(PodShard, PartitionedRoutingKeepsFtSliceLocal)
{
    cfg::SystemConfig config = sys::transFwConfig();
    core::FtCluster ft(config.transFw, 4);
    ASSERT_EQ(ft.shards(), 4);
    ASSERT_FALSE(ft.replicated());

    int spread[4] = {0, 0, 0, 0};
    for (mem::Vpn vpn = 0; vpn < 4096; ++vpn) {
        int home = ft.homeShard(vpn);
        ASSERT_GE(home, 0);
        ASSERT_LT(home, 4);
        EXPECT_EQ(home, core::shardOfVpnGroup(
                            vpn, config.transFw.vpnMaskBits, 4));
        ++spread[home];
    }
    // The splitmix64 map must actually spread the groups around.
    for (int s = 0; s < 4; ++s)
        EXPECT_GT(spread[s], 4096 / 16);

    // An arrival lands only in the home slice; probing from the home
    // shard finds it, and no coherence traffic exists.
    mem::Vpn vpn = 0x1234;
    int home = ft.homeShard(vpn);
    ft.pageArrived(vpn, 2);
    auto owner = ft.findOwner(home, vpn, 16, /*exclude_gpu=*/3);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, 2);
    for (int s = 0; s < 4; ++s) {
        if (s == home)
            continue;
        EXPECT_FALSE(
            ft.table(s).findOwner(vpn, 16, 3).has_value());
    }
    EXPECT_EQ(ft.replicaUpdates(), 0u);
    EXPECT_EQ(ft.replicaInvalidations(), 0u);
}

TEST(PodShard, ReplicatedFtBroadcastsCoherence)
{
    cfg::SystemConfig config = sys::transFwConfig();
    config.transFw.ftReplicated = true;
    core::FtCluster ft(config.transFw, 4);
    ASSERT_TRUE(ft.replicated());

    mem::Vpn vpn = 0x9abc;
    ft.pageArrived(vpn, 5);
    // Every replica can answer, at the price of K-1 update messages.
    EXPECT_EQ(ft.replicaUpdates(), 3u);
    for (int s = 0; s < 4; ++s) {
        auto owner = ft.findOwner(s, vpn, 16, /*exclude_gpu=*/0);
        ASSERT_TRUE(owner.has_value()) << "shard " << s;
        EXPECT_EQ(*owner, 5);
    }
    ft.pageDeparted(vpn, 5);
    EXPECT_EQ(ft.replicaInvalidations(), 3u);
    for (int s = 0; s < 4; ++s)
        EXPECT_FALSE(ft.findOwner(s, vpn, 16, 0).has_value());
}

// --- whole-system sharding ---------------------------------------------

namespace {

cfg::SystemConfig
podConfig(int gpus, int shards, ic::Topology topo)
{
    cfg::SystemConfig config = sys::transFwConfig();
    config.numGpus = gpus;
    config.cusPerGpu = 4;
    config.peerTopology = topo;
    config.hostShards = shards;
    return config;
}

} // namespace

TEST(PodShard, ShardStatSumsMatchTotals)
{
    sys::SimResults r = sys::runApp(
        "MT", podConfig(16, 4, ic::Topology::Ring), 0.05);

    ASSERT_EQ(r.hostShardWalks.size(), 4u);
    ASSERT_EQ(r.hostShardQueueWaitMean.size(), 4u);
    ASSERT_EQ(r.hostShardMaxQueueDepth.size(), 4u);
    std::uint64_t shard_walks = std::accumulate(
        r.hostShardWalks.begin(), r.hostShardWalks.end(),
        std::uint64_t{0});
    EXPECT_EQ(shard_walks, r.hostWalks);
    EXPECT_GT(r.hostWalks, 0u);
    // Every fault crossed the crossbar (K > 1 always routes).
    EXPECT_GE(r.hostRoutedFaults, r.farFaults);

#if TRANSFW_OBS
    // Attribution stays exact with the route hop in the path: the
    // host-queue latency field decomposes into queue-wait plus the
    // crossbar charge, cycle for cycle. (Buckets are stubbed out
    // under -DTRANSFW_OBS=OFF.)
    const auto &bucket = r.attribution.bucket;
    double host_queue = bucket[static_cast<std::size_t>(
        obs::AttribBucket::HostQueue)];
    double host_route = bucket[static_cast<std::size_t>(
        obs::AttribBucket::HostRoute)];
    EXPECT_GT(host_route, 0.0);
    EXPECT_DOUBLE_EQ(host_queue + host_route, r.xlat.hostQueue);
#endif
    EXPECT_EQ(r.obsCheckViolations, 0u);
}

TEST(PodShard, ShardingRelievesHostQueue)
{
    // The study's core signal: 4 shards drain the same fault stream
    // with far less per-queue waiting than 1 shard.
    sys::SimResults one = sys::runApp(
        "MT", podConfig(16, 1, ic::Topology::AllToAll), 0.05);
    sys::SimResults four = sys::runApp(
        "MT", podConfig(16, 4, ic::Topology::AllToAll), 0.05);
    EXPECT_TRUE(four.hostShardQueueWaitMean.size() == 4u);
    double worst = 0.0;
    for (double w : four.hostShardQueueWaitMean)
        worst = std::max(worst, w);
    EXPECT_LT(worst, one.hostQueueWaitMean);
    EXPECT_EQ(one.obsCheckViolations, 0u);
    EXPECT_EQ(four.obsCheckViolations, 0u);
}

TEST(PodShard, ReplicatedFtModeRunsEndToEnd)
{
    cfg::SystemConfig config = podConfig(8, 4, ic::Topology::AllToAll);
    config.transFw.ftReplicated = true;
    sys::SimResults r = sys::runApp("MT", config, 0.05);
    EXPECT_GT(r.ftReplicaUpdates, 0u);
    EXPECT_EQ(r.obsCheckViolations, 0u);
}

TEST(PodShard, SixtyFourGpuRingRunsSharded)
{
    // The acceptance floor: a 64-GPU pod on a ring with 4 IOMMU
    // shards simulates end-to-end, attribution intact.
    sys::SimResults r = sys::runApp(
        "MT", podConfig(64, 4, ic::Topology::Ring), 0.02);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.farFaults, 0u);
    EXPECT_EQ(r.obsCheckViolations, 0u);
}

// --- differential guarantees -------------------------------------------

TEST(PodShard, OneShardReproducesPreShardSimulatorExactly)
{
    // Pinned against the pre-sharding simulator (hostShards == 1 must
    // stay event-for-event identical to the monolithic host MMU): the
    // values below were recorded from the tree before the cluster
    // layer existed, at these exact configs.
    struct Pin
    {
        const char *app;
        bool transfw;
        ic::Topology topo;
        int gpus;
        std::uint64_t exec, events, l2Misses, faults, hostWalks,
            forwardSuccess;
    };
    const Pin pins[] = {
        {"MT", true, ic::Topology::AllToAll, 8, 23356, 85815, 5275,
         4882, 1879, 3296},
        {"MT", true, ic::Topology::Ring, 16, 28504, 91136, 5279, 4989,
         2074, 2791},
        {"KM", false, ic::Topology::AllToAll, 8, 13880, 48152, 1711,
         1197, 1151, 0},
    };
    for (const Pin &pin : pins) {
        SCOPED_TRACE(pin.app);
        cfg::SystemConfig config = sys::baselineConfig();
        config.transFw.enabled = pin.transfw;
        config.peerTopology = pin.topo;
        config.numGpus = pin.gpus;
        config.cusPerGpu = 8;
        config.hostShards = 1;
        sys::SimResults r = sys::runApp(pin.app, config, 0.1);
        EXPECT_EQ(r.execTime, pin.exec);
        EXPECT_EQ(r.eventsExecuted, pin.events);
        EXPECT_EQ(r.l2TlbMisses, pin.l2Misses);
        EXPECT_EQ(r.farFaults, pin.faults);
        EXPECT_EQ(r.hostWalks, pin.hostWalks);
        EXPECT_EQ(r.forwardSuccess, pin.forwardSuccess);
        // 1-shard mode has no crossbar: nothing routed, nothing
        // charged to the route bucket.
        EXPECT_EQ(r.hostRoutedFaults, 0u);
        EXPECT_EQ(r.attribution.bucket[static_cast<std::size_t>(
                      obs::AttribBucket::HostRoute)],
                  0.0);
        EXPECT_TRUE(r.hostShardWalks.empty());
    }
}

TEST(PodShard, SerialVsLanesBitIdentitySharded)
{
    // 16 GPUs x 4 shards on a ring: the lane kernel must reproduce
    // the serial kernel bit-for-bit with the shard crossbar live on
    // the host lane.
    cfg::SystemConfig config = podConfig(16, 4, ic::Topology::Ring);
    config.sim.lanes = 0;
    sys::SimResults serial = sys::runApp("MT", config, 0.05);
    for (int lanes : {2, 4}) {
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        config.sim.lanes = lanes;
        sys::SimResults parallel = sys::runApp("MT", config, 0.05);
        EXPECT_EQ(serial.execTime, parallel.execTime);
        EXPECT_EQ(serial.eventsExecuted, parallel.eventsExecuted);
        EXPECT_EQ(serial.farFaults, parallel.farFaults);
        EXPECT_EQ(serial.hostWalks, parallel.hostWalks);
        EXPECT_EQ(serial.hostRoutedFaults, parallel.hostRoutedFaults);
        EXPECT_EQ(serial.forwards, parallel.forwards);
        EXPECT_EQ(serial.forwardSuccess, parallel.forwardSuccess);
        EXPECT_EQ(serial.xlat.hostQueue, parallel.xlat.hostQueue);
        EXPECT_EQ(serial.xlat.network, parallel.xlat.network);
        EXPECT_EQ(serial.avgXlatLatency, parallel.avgXlatLatency);
        EXPECT_EQ(serial.xlatLatencyHist.quantile(0.99),
                  parallel.xlatLatencyHist.quantile(0.99));
        ASSERT_EQ(serial.hostShardWalks.size(),
                  parallel.hostShardWalks.size());
        for (std::size_t s = 0; s < serial.hostShardWalks.size(); ++s)
            EXPECT_EQ(serial.hostShardWalks[s],
                      parallel.hostShardWalks[s]);
        for (std::size_t b = 0; b < obs::kNumAttribBuckets; ++b)
            EXPECT_EQ(serial.attribution.bucket[b],
                      parallel.attribution.bucket[b]);
        EXPECT_EQ(parallel.obsCheckViolations, 0u);
    }
}
