#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mmu/request.hpp"
#include "sim/pool.hpp"

using namespace transfw;

namespace {

struct Tracked : public sim::Pooled<Tracked>
{
    int value = 7;
};

} // namespace

TEST(ObjectPool, ReleasedSlotIsRecycled)
{
    Tracked *first;
    {
        sim::PoolRef<Tracked> a = sim::makePooled<Tracked>();
        first = a.get();
    }
    sim::PoolRef<Tracked> b = sim::makePooled<Tracked>();
    // LIFO freelist: the slot released last is handed out first.
    EXPECT_EQ(b.get(), first);
}

TEST(ObjectPool, ReusedSlotIsFreshlyConstructed)
{
    {
        sim::PoolRef<Tracked> a = sim::makePooled<Tracked>();
        a->value = 1234;
    }
    sim::PoolRef<Tracked> b = sim::makePooled<Tracked>();
    EXPECT_EQ(b->value, 7);
}

TEST(ObjectPool, LiveObjectsTracksAcquireRelease)
{
    sim::ObjectPool<Tracked> &pool = sim::ObjectPool<Tracked>::local();
    std::size_t before = pool.liveObjects();
    {
        sim::PoolRef<Tracked> a = sim::makePooled<Tracked>();
        sim::PoolRef<Tracked> b = sim::makePooled<Tracked>();
        EXPECT_EQ(pool.liveObjects(), before + 2);
    }
    EXPECT_EQ(pool.liveObjects(), before);
}

TEST(ObjectPool, ManyObjectsSpanMultipleSlabs)
{
    sim::ObjectPool<Tracked> &pool = sim::ObjectPool<Tracked>::local();
    std::size_t before = pool.liveObjects();
    std::vector<sim::PoolRef<Tracked>> refs;
    for (int i = 0; i < 1000; ++i) {
        refs.push_back(sim::makePooled<Tracked>());
        refs.back()->value = i;
    }
    EXPECT_EQ(pool.liveObjects(), before + 1000);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(refs[static_cast<std::size_t>(i)]->value, i);
    refs.clear();
    EXPECT_EQ(pool.liveObjects(), before);
}

TEST(PoolRef, CopyBumpsRefCountAndKeepsObjectAlive)
{
    sim::PoolRef<Tracked> a = sim::makePooled<Tracked>();
    EXPECT_EQ(a.useCount(), 1u);
    {
        sim::PoolRef<Tracked> b = a;
        EXPECT_EQ(a.useCount(), 2u);
        EXPECT_EQ(a.get(), b.get());
        b->value = 99;
    }
    EXPECT_EQ(a.useCount(), 1u);
    EXPECT_EQ(a->value, 99);
}

TEST(PoolRef, MoveStealsWithoutTouchingRefCount)
{
    sim::PoolRef<Tracked> a = sim::makePooled<Tracked>();
    Tracked *raw = a.get();
    sim::PoolRef<Tracked> b = std::move(a);
    EXPECT_EQ(a.get(), nullptr);
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(b.useCount(), 1u);
}

TEST(PoolRef, NullAndResetSemantics)
{
    sim::PoolRef<Tracked> a;
    EXPECT_EQ(a, nullptr);
    EXPECT_FALSE(a);
    a = sim::makePooled<Tracked>();
    EXPECT_NE(a, nullptr);
    EXPECT_TRUE(a);
    a.reset();
    EXPECT_EQ(a, nullptr);
}

TEST(PoolRef, AssignmentReleasesPrevious)
{
    sim::ObjectPool<Tracked> &pool = sim::ObjectPool<Tracked>::local();
    std::size_t before = pool.liveObjects();
    sim::PoolRef<Tracked> a = sim::makePooled<Tracked>();
    a = sim::makePooled<Tracked>();
    EXPECT_EQ(pool.liveObjects(), before + 1);
    a.reset();
    EXPECT_EQ(pool.liveObjects(), before);
}

TEST(PoolRef, RemoteLookupReleaseChainFreesRequest)
{
    // The simulator's real ownership shape: a pooled RemoteLookup holds
    // a PoolRef to the pooled XlatRequest; dropping the lookup must
    // release the request exactly once.
    sim::ObjectPool<mmu::XlatRequest> &reqPool =
        sim::ObjectPool<mmu::XlatRequest>::local();
    std::size_t before = reqPool.liveObjects();
    mmu::XlatPtr req = mmu::makeRequest();
    {
        mmu::RemoteLookupPtr rl = mmu::makeRemoteLookup();
        rl->req = req;
        EXPECT_EQ(req.useCount(), 2u);
    }
    EXPECT_EQ(req.useCount(), 1u);
    EXPECT_EQ(reqPool.liveObjects(), before + 1);
    req.reset();
    EXPECT_EQ(reqPool.liveObjects(), before);
}
