#include <gtest/gtest.h>

#include "config/config.hpp"
#include "transfw/forwarding_table.hpp"
#include "transfw/prt.hpp"

using namespace transfw;
using core::ForwardingTable;
using core::PendingRequestTable;

namespace {

cfg::TransFwConfig
tf(unsigned mask_bits = 0)
{
    cfg::TransFwConfig config;
    config.enabled = true;
    if (mask_bits)
        config.vpnMaskBits = mask_bits;
    return config;
}

} // namespace

TEST(Prt, TracksResidency)
{
    PendingRequestTable prt(tf(3), 0);
    EXPECT_FALSE(prt.mayBeLocal(0x1000));
    prt.pageArrived(0x1000);
    EXPECT_TRUE(prt.mayBeLocal(0x1000));
    prt.pageDeparted(0x1000);
    EXPECT_FALSE(prt.mayBeLocal(0x1000));
}

TEST(Prt, GroupMaskingSharesFingerprint)
{
    PendingRequestTable prt(tf(3), 0);
    prt.pageArrived(0x1000);
    // Pages in the same 8-page group alias to the same fingerprint:
    // a false positive by design.
    EXPECT_TRUE(prt.mayBeLocal(0x1001));
    // A different group misses.
    EXPECT_FALSE(prt.mayBeLocal(0x1008));
}

TEST(Prt, GroupCountPreventsPrematureDelete)
{
    PendingRequestTable prt(tf(3), 0);
    prt.pageArrived(0x2000);
    prt.pageArrived(0x2001); // same group
    prt.pageDeparted(0x2000);
    EXPECT_TRUE(prt.mayBeLocal(0x2001)); // one page still resident
    prt.pageDeparted(0x2001);
    EXPECT_FALSE(prt.mayBeLocal(0x2001));
}

TEST(Prt, DepartUntrackedPageIsNoop)
{
    PendingRequestTable prt(tf(), 0);
    prt.pageDeparted(0x5000); // never arrived
    EXPECT_FALSE(prt.mayBeLocal(0x5000));
}

TEST(Prt, StatsAndSize)
{
    PendingRequestTable prt(tf(), 0);
    prt.mayBeLocal(1);
    prt.pageArrived(1 << 10);
    prt.mayBeLocal(1 << 10);
    EXPECT_EQ(prt.lookups(), 2u);
    EXPECT_EQ(prt.hits(), 1u);
    // Paper Section IV-E: 500 fingerprints x 13 bits = 0.79 KB.
    EXPECT_EQ(prt.bits(), 500u * 13u);
    EXPECT_NEAR(prt.bits() / 8.0 / 1024.0, 0.79, 0.01);
}

TEST(Ft, FindsOwnerAndFollowsMigration)
{
    ForwardingTable ft(tf(3));
    ft.pageArrived(0x3000, 2);
    auto owner = ft.findOwner(0x3000, 4, /*exclude=*/0);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, 2);

    // Migration 2 -> 1.
    ft.pageDeparted(0x3000, 2);
    ft.pageArrived(0x3000, 1);
    owner = ft.findOwner(0x3000, 4, 0);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, 1);
}

TEST(Ft, ExcludesRequester)
{
    ForwardingTable ft(tf(3));
    ft.pageArrived(0x4000, 3);
    EXPECT_FALSE(ft.findOwner(0x4000, 4, 3).has_value());
}

TEST(Ft, MultipleOwnersReturnsOneOfThem)
{
    ForwardingTable ft(tf(3));
    ft.pageArrived(0x5000, 1); // e.g., read replicas
    ft.pageArrived(0x5000, 2);
    for (int i = 0; i < 20; ++i) {
        auto owner = ft.findOwner(0x5000, 4, 0);
        ASSERT_TRUE(owner.has_value());
        EXPECT_TRUE(*owner == 1 || *owner == 2);
    }
}

TEST(Ft, MissWhenNoGpuOwner)
{
    ForwardingTable ft(tf());
    EXPECT_FALSE(ft.findOwner(0x9000, 4, 0).has_value());
    EXPECT_EQ(ft.lookups(), 1u);
    EXPECT_EQ(ft.hits(), 0u);
}

TEST(Ft, SizeMatchesPaper)
{
    ForwardingTable ft(tf());
    // Section IV-E: 2000 fingerprints x 11 bits = 2.68 KB.
    EXPECT_EQ(ft.bits(), 2000u * 11u);
    EXPECT_NEAR(ft.bits() / 8.0 / 1024.0, 2.68, 0.01);
}

TEST(Ft, RefCountedGroups)
{
    ForwardingTable ft(tf(3));
    ft.pageArrived(0x6000, 1);
    ft.pageArrived(0x6001, 1); // same group, same owner
    ft.pageDeparted(0x6000, 1);
    EXPECT_TRUE(ft.findOwner(0x6001, 4, 0).has_value());
    ft.pageDeparted(0x6001, 1);
    EXPECT_FALSE(ft.findOwner(0x6001, 4, 0).has_value());
}
