#include <gtest/gtest.h>

#include "pwc/infinite.hpp"
#include "pwc/pwc.hpp"
#include "pwc/stc.hpp"
#include "pwc/utc.hpp"

using namespace transfw;
using namespace transfw::pwc;

namespace {

mem::PagingGeometry
geo5()
{
    return mem::PagingGeometry{5, mem::kSmallPageShift};
}

} // namespace

TEST(Utc, LongestPrefixWins)
{
    UnifiedTranslationCache utc(128, geo5());
    mem::Vpn vpn = 0x123456789ULL;
    EXPECT_EQ(utc.lookup(vpn), 0);
    utc.fill(vpn, 5);
    EXPECT_EQ(utc.lookup(vpn), 5);
    utc.fill(vpn, 3);
    EXPECT_EQ(utc.lookup(vpn), 3); // longer prefix preferred
    utc.fill(vpn, 2);
    EXPECT_EQ(utc.lookup(vpn), 2);
}

TEST(Utc, PrefixSharingAcrossNeighbours)
{
    UnifiedTranslationCache utc(128, geo5());
    mem::Vpn a = 0x123456789ULL;
    mem::Vpn b = a ^ 0x1; // same L2 prefix, different leaf index
    for (int level = 2; level <= 5; ++level)
        utc.fill(a, level);
    EXPECT_EQ(utc.lookup(b), 2);
    // A page in the next L1 node misses at L2 but matches at L3.
    mem::Vpn c = a + (1ULL << 9);
    EXPECT_EQ(utc.lookup(c), 3);
}

TEST(Utc, PaperWalkExample)
{
    // Section II-B example: after walking (123,9a8,11c,009,1b8), a
    // query for (123,9a8,11c,026,00b) matches the L3 entry.
    UnifiedTranslationCache utc(128, geo5());
    auto make = [](mem::Vpn i5, mem::Vpn i4, mem::Vpn i3, mem::Vpn i2,
                   mem::Vpn i1) {
        return (i5 << 36) | (i4 << 27) | (i3 << 18) | (i2 << 9) | i1;
    };
    mem::Vpn walked = make(0x123, 0x1A8, 0x11C, 0x009, 0x1B8);
    for (int level = 2; level <= 5; ++level)
        utc.fill(walked, level);
    mem::Vpn query = make(0x123, 0x1A8, 0x11C, 0x026, 0x00B);
    EXPECT_EQ(utc.lookup(query), 3);
}

TEST(Utc, EvictionUnderPressure)
{
    UnifiedTranslationCache utc(16, geo5());
    for (mem::Vpn vpn = 0; vpn < 64; ++vpn)
        utc.fill(vpn << 20, 2); // distinct L2 prefixes
    int hits = 0;
    for (mem::Vpn vpn = 0; vpn < 64; ++vpn)
        hits += utc.probe(vpn << 20) ? 1 : 0;
    EXPECT_LE(hits, 16);
}

TEST(Utc, HitLevelHistogram)
{
    UnifiedTranslationCache utc(128, geo5());
    utc.lookup(0x1); // miss -> bucket 0
    utc.fill(0x1, 2);
    utc.lookup(0x1); // bucket 2
    utc.lookup(0x1);
    EXPECT_EQ(utc.hitLevels().bucket(0), 1u);
    EXPECT_EQ(utc.hitLevels().bucket(2), 2u);
    EXPECT_EQ(utc.lookups(), 3u);
}

TEST(Stc, PerLevelIsolation)
{
    SplitTranslationCache stc(geo5());
    mem::Vpn vpn = 0xABCDEF012ULL;
    stc.fill(vpn, 4);
    EXPECT_EQ(stc.lookup(vpn), 4);
    stc.fill(vpn, 2);
    EXPECT_EQ(stc.lookup(vpn), 2);
    // Thrashing the L2 array (distinct L2 prefixes) must not evict the
    // L4 entry, and eventually evicts vpn's own L2 entry.
    for (mem::Vpn other = 1; other <= 256; ++other)
        stc.fill(vpn + (other << 9), 2);
    EXPECT_EQ(stc.lookup(vpn), 4);
}

TEST(Stc, InvalidateAll)
{
    SplitTranslationCache stc(geo5());
    stc.fill(0x123, 3);
    stc.invalidateAll();
    EXPECT_EQ(stc.probe(0x123), 0);
}

TEST(InfinitePwc, OnlyColdMisses)
{
    InfinitePwc pwc(geo5());
    for (mem::Vpn vpn = 0; vpn < 100000; vpn += 97)
        pwc.fill(vpn << 9, 2);
    for (mem::Vpn vpn = 0; vpn < 100000; vpn += 97)
        EXPECT_EQ(pwc.probe(vpn << 9), 2);
}

TEST(PwcFactory, BuildsEachKind)
{
    EXPECT_NE(makePwc(PwcKind::Utc, 128, geo5()), nullptr);
    EXPECT_NE(makePwc(PwcKind::Stc, 128, geo5()), nullptr);
    EXPECT_NE(makePwc(PwcKind::Infinite, 0, geo5()), nullptr);
}

/** Every PWC kind respects the geometry's cacheable level range. */
class PwcKinds : public ::testing::TestWithParam<
                     std::tuple<PwcKind, int, unsigned>>
{};

TEST_P(PwcKinds, LevelsWithinGeometry)
{
    auto [kind, levels, shift] = GetParam();
    mem::PagingGeometry geo{levels, shift};
    auto pwc = makePwc(kind, 128, geo);
    mem::Vpn vpn = 0x3F3F3F3FULL;
    for (int level = geo.lowestCachedLevel(); level <= levels; ++level) {
        pwc->fill(vpn, level);
        int hit = pwc->lookup(vpn);
        EXPECT_GE(hit, geo.lowestCachedLevel());
        EXPECT_LE(hit, levels);
    }
    // Longest prefix (lowest level) wins once all levels are present.
    EXPECT_EQ(pwc->lookup(vpn), geo.lowestCachedLevel());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PwcKinds,
    ::testing::Combine(
        ::testing::Values(PwcKind::Utc, PwcKind::Stc, PwcKind::Infinite),
        ::testing::Values(4, 5),
        ::testing::Values(transfw::mem::kSmallPageShift,
                          transfw::mem::kLargePageShift)));
