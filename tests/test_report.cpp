#include <gtest/gtest.h>

#include <sstream>

#include "system/report.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

sys::SimResults
sampleRun()
{
    wl::SyntheticSpec spec;
    spec.name = "report-sample";
    spec.numCtas = 16;
    spec.memOpsPerCta = 10;
    spec.regions = {{.name = "r", .pages = 64, .weight = 1.0,
                     .writeFrac = 0.3, .reuse = 2}};
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig config = sys::baselineConfig();
    config.cusPerGpu = 4;
    return sys::runWorkload(workload, config);
}

} // namespace

TEST(Report, RegistryHasCoreKeys)
{
    stats::Registry registry = sys::toRegistry(sampleRun());
    for (const char *key :
         {"exec.cycles", "fault.pfpki", "xlat.hostQueue",
          "tlb.l2HitRate", "migration.count", "pwc.gmmu.L2",
          "sharing.by4"}) {
        EXPECT_TRUE(registry.has(key)) << key;
    }
    EXPECT_GT(registry.get("exec.cycles"), 0.0);
    EXPECT_EQ(registry.get("exec.memOps"), 160.0);
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    sys::SimResults r = sampleRun();
    std::string header = sys::csvHeader();
    std::string row = sys::csvRow(r);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row));
    EXPECT_EQ(header.substr(0, 3), "app");
    EXPECT_EQ(row.substr(0, r.app.size()), r.app);
}

TEST(Report, FormatContainsAppAndConfig)
{
    sys::SimResults r = sampleRun();
    std::string text = sys::formatReport(r);
    EXPECT_NE(text.find("report-sample"), std::string::npos);
    EXPECT_NE(text.find("exec.cycles"), std::string::npos);
    EXPECT_NE(text.find("GPUs"), std::string::npos);
}
