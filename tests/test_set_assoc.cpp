#include <gtest/gtest.h>

#include "cache/set_assoc.hpp"

using transfw::cache::SetAssoc;

TEST(SetAssoc, HitAfterInsert)
{
    SetAssoc<int> cache(8, 4);
    cache.insert(1, 100);
    int *value = cache.lookup(1);
    ASSERT_NE(value, nullptr);
    EXPECT_EQ(*value, 100);
    EXPECT_EQ(cache.lookup(2), nullptr);
}

TEST(SetAssoc, LruEvictsOldest)
{
    SetAssoc<int> cache(4, 4); // fully associative, 4 entries
    for (int i = 0; i < 4; ++i)
        cache.insert(static_cast<std::uint64_t>(i), i);
    // Touch 0 so 1 becomes LRU.
    cache.lookup(0);
    auto evicted = cache.insert(99, 99);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->first, 1u);
    EXPECT_NE(cache.lookup(0), nullptr);
    EXPECT_EQ(cache.lookup(1), nullptr);
}

TEST(SetAssoc, InsertRefreshesExisting)
{
    SetAssoc<int> cache(4, 4);
    cache.insert(5, 1);
    auto evicted = cache.insert(5, 2);
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(*cache.lookup(5), 2);
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(SetAssoc, ProbeDoesNotTouchLru)
{
    SetAssoc<int> cache(2, 2);
    cache.insert(1, 1);
    cache.insert(2, 2);
    // Probing 1 must not save it from eviction.
    EXPECT_NE(cache.probe(1), nullptr);
    auto evicted = cache.insert(3, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->first, 1u);
}

TEST(SetAssoc, Invalidate)
{
    SetAssoc<int> cache(8, 2);
    cache.insert(7, 7);
    EXPECT_TRUE(cache.invalidate(7));
    EXPECT_FALSE(cache.invalidate(7));
    EXPECT_EQ(cache.lookup(7), nullptr);
}

TEST(SetAssoc, InvalidateAllAndForEach)
{
    SetAssoc<int> cache(16, 4);
    for (int i = 0; i < 10; ++i)
        cache.insert(static_cast<std::uint64_t>(i), i);
    int count = 0;
    cache.forEach([&](std::uint64_t, const int &) { ++count; });
    EXPECT_EQ(count, 10);
    cache.invalidateAll();
    EXPECT_EQ(cache.occupancy(), 0u);
}

TEST(SetAssoc, SetConflictsEvictWithinSet)
{
    // 2 sets x 2 ways: inserting many keys never exceeds capacity and
    // keys always land in a deterministic set.
    SetAssoc<int> cache(4, 2);
    for (std::uint64_t key = 0; key < 100; ++key)
        cache.insert(key, static_cast<int>(key));
    EXPECT_LE(cache.occupancy(), 4u);
}

/** Property sweep: capacity is always honored and hits are exact. */
class SetAssocParam
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{};

TEST_P(SetAssocParam, CapacityAndExactness)
{
    auto [entries, ways] = GetParam();
    SetAssoc<std::uint64_t> cache(entries, ways);
    for (std::uint64_t key = 0; key < 4 * entries; ++key)
        cache.insert(key, key * 3);
    EXPECT_LE(cache.occupancy(), entries);
    std::size_t hits = 0;
    for (std::uint64_t key = 0; key < 4 * entries; ++key) {
        if (const std::uint64_t *v = cache.probe(key)) {
            EXPECT_EQ(*v, key * 3);
            ++hits;
        }
    }
    EXPECT_EQ(hits, cache.occupancy());
}

INSTANTIATE_TEST_SUITE_P(Shapes, SetAssocParam,
                         ::testing::Values(std::pair{32u, 32u},
                                           std::pair{512u, 16u},
                                           std::pair{2048u, 64u},
                                           std::pair{128u, 4u},
                                           std::pair{16u, 1u}));
