#include <gtest/gtest.h>

#include "transfw/transfw.hpp"

using namespace transfw;

/** End-to-end smoke: a tiny workload runs to completion on 2 GPUs. */
TEST(Smoke, TinyRunCompletes)
{
    wl::SyntheticSpec spec;
    spec.name = "tiny";
    spec.numCtas = 16;
    spec.memOpsPerCta = 10;
    spec.computePerOp = 2;
    spec.regions = {{.name = "data", .pages = 64, .weight = 1.0,
                     .writeFrac = 0.2, .reuse = 2}};
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 2;
    config.cusPerGpu = 4;
    config.wavefrontSlotsPerCu = 2;

    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_GT(r.execTime, 0u);
    EXPECT_EQ(r.memOps, 16u * 10u);
    // Prewarmed + fully partitioned: no far faults at all.
    EXPECT_EQ(r.farFaults, 0u);
    EXPECT_GT(r.instructions, 0u);
}

/** Cold placement (everything on the CPU) must produce cold faults. */
TEST(Smoke, ColdPlacementFaults)
{
    wl::SyntheticSpec spec;
    spec.name = "tiny-cold";
    spec.numCtas = 16;
    spec.memOpsPerCta = 10;
    spec.regions = {{.name = "data", .pages = 64, .weight = 1.0,
                     .reuse = 2}};
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 2;
    config.cusPerGpu = 4;
    config.wavefrontSlotsPerCu = 2;
    config.prewarmPlacement = false;

    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_GT(r.farFaults, 0u);
    EXPECT_GT(r.migrations, 0u);
}
