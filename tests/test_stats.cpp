#include <gtest/gtest.h>

#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "stats/stats.hpp"

using namespace transfw;
using namespace transfw::stats;

TEST(Counter, IncAndReset)
{
    Counter counter;
    counter.inc();
    counter.inc(4);
    EXPECT_EQ(counter.value(), 5u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution dist;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        dist.record(x);
    EXPECT_EQ(dist.count(), 4u);
    EXPECT_DOUBLE_EQ(dist.mean(), 2.5);
    EXPECT_DOUBLE_EQ(dist.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(dist.maximum(), 4.0);
    EXPECT_NEAR(dist.variance(), 1.25, 1e-9);
}

TEST(Distribution, WelfordStableAtLargeMagnitude)
{
    // Regression: the old sum/sumsq formulation cancels catastrophically
    // when the mean dwarfs the spread — samples around 1e9 with unit
    // spread produced wildly wrong (even negative) variances. Welford's
    // update keeps full precision.
    Distribution dist;
    for (double x : {1e9, 1e9 + 1.0, 1e9 + 2.0})
        dist.record(x);
    EXPECT_DOUBLE_EQ(dist.mean(), 1e9 + 1.0);
    EXPECT_NEAR(dist.variance(), 2.0 / 3.0, 1e-3);
    EXPECT_GE(dist.variance(), 0.0);

    // Harsher still: tick-scale offsets with tiny jitter.
    Distribution ticks;
    for (int i = 0; i < 1000; ++i)
        ticks.record(4e15 + (i % 2));
    EXPECT_NEAR(ticks.variance(), 0.25, 1e-3);
    EXPECT_GE(ticks.variance(), 0.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution dist;
    EXPECT_EQ(dist.mean(), 0.0);
    EXPECT_EQ(dist.variance(), 0.0);
    EXPECT_EQ(dist.minimum(), 0.0);
}

TEST(BucketHistogram, RecordAndFractions)
{
    BucketHistogram hist(4);
    hist.record(1, 3);
    hist.record(2, 1);
    EXPECT_EQ(hist.total(), 4u);
    EXPECT_DOUBLE_EQ(hist.fraction(1), 0.75);
    EXPECT_DOUBLE_EQ(hist.fraction(2), 0.25);
    EXPECT_DOUBLE_EQ(hist.fraction(3), 0.0);
}

TEST(BucketHistogram, GrowsOnDemand)
{
    BucketHistogram hist(2);
    hist.record(7);
    EXPECT_EQ(hist.bucket(7), 1u);
    EXPECT_GE(hist.buckets(), 8u);
}

TEST(LatencyBreakdownStat, SumAndAccumulate)
{
    LatencyBreakdown a;
    a.gmmuQueue = 10;
    a.migration = 5;
    LatencyBreakdown b;
    b.gmmuQueue = 1;
    b.network = 2;
    a += b;
    EXPECT_DOUBLE_EQ(a.gmmuQueue, 11.0);
    EXPECT_DOUBLE_EQ(a.total(), 18.0);
}

TEST(Registry, SetGetFormat)
{
    Registry registry;
    registry.set("b", 2);
    registry.set("a", 1);
    EXPECT_TRUE(registry.has("a"));
    EXPECT_FALSE(registry.has("c"));
    EXPECT_DOUBLE_EQ(registry.get("b"), 2.0);
    EXPECT_EQ(registry.format(), "a = 1\nb = 2\n");
}

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(sim::strfmt("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(sim::strfmt("%05.1f", 3.25), "003.2");
}

TEST(Rng, DeterministicAndBounded)
{
    sim::Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
    sim::Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(c.range(17), 17u);
        double u = c.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, RoughUniformity)
{
    sim::Rng rng(99);
    int counts[10] = {};
    for (int i = 0; i < 100000; ++i)
        ++counts[rng.range(10)];
    for (int count : counts) {
        EXPECT_GT(count, 9000);
        EXPECT_LT(count, 11000);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    sim::Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}
