#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "system/sweep.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

constexpr double kScale = 0.05; // tiny but non-trivial runs

std::vector<sys::RunSpec>
sampleSpecs()
{
    // 3 apps x 2 configs: the determinism matrix the issue calls for.
    std::vector<sys::RunSpec> specs;
    for (const char *app : {"AES", "KM", "MT"}) {
        specs.push_back({app, sys::baselineConfig(), kScale});
        specs.push_back({app, sys::transFwConfig(), kScale});
    }
    return specs;
}

/**
 * Field-by-field equality over everything a bench might read. Exact
 * (==, including doubles): the claim under test is bitwise-identical
 * simulation, not statistical closeness.
 */
void
expectIdentical(const sys::SimResults &a, const sys::SimResults &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.memOps, b.memOps);
    EXPECT_EQ(a.pageAccesses, b.pageAccesses);
    EXPECT_EQ(a.l2TlbMisses, b.l2TlbMisses);
    EXPECT_EQ(a.farFaults, b.farFaults);
    EXPECT_EQ(a.avgXlatLatency, b.avgXlatLatency);
    EXPECT_EQ(a.xlatLatencyHist.count(), b.xlatLatencyHist.count());
    EXPECT_EQ(a.xlatLatencyHist.quantile(0.5),
              b.xlatLatencyHist.quantile(0.5));
    EXPECT_EQ(a.xlatLatencyHist.quantile(0.99),
              b.xlatLatencyHist.quantile(0.99));
    EXPECT_EQ(a.l1HitRate, b.l1HitRate);
    EXPECT_EQ(a.l2HitRate, b.l2HitRate);
    EXPECT_EQ(a.hostTlbHitRate, b.hostTlbHitRate);
    EXPECT_EQ(a.gmmuQueueWaitMean, b.gmmuQueueWaitMean);
    EXPECT_EQ(a.hostQueueWaitMean, b.hostQueueWaitMean);
    EXPECT_EQ(a.shortCircuits, b.shortCircuits);
    EXPECT_EQ(a.prtHits, b.prtHits);
    EXPECT_EQ(a.ftHits, b.ftHits);
    EXPECT_EQ(a.forwards, b.forwards);
    EXPECT_EQ(a.duplicateWalks, b.duplicateWalks);
    EXPECT_EQ(a.hostWalks, b.hostWalks);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.bytesMoved, b.bytesMoved);
}

} // namespace

TEST(Sweep, ParallelMatchesSerialExactly)
{
    std::vector<sys::RunSpec> specs = sampleSpecs();

    sys::SweepRunner serial(1);
    std::vector<sys::SimResults> serialResults = serial.run(specs);

    sys::SweepRunner parallel(4);
    std::vector<sys::SimResults> parallelResults = parallel.run(specs);

    ASSERT_EQ(serialResults.size(), specs.size());
    ASSERT_EQ(parallelResults.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].app);
        expectIdentical(serialResults[i], parallelResults[i]);
    }
}

TEST(Sweep, RepeatedPooledRunsAreIdentical)
{
    // Two back-to-back runs on fresh runners: slab/pool recycling from
    // the first run must not leak state into the second.
    std::vector<sys::RunSpec> specs = sampleSpecs();
    std::vector<sys::SimResults> first = sys::SweepRunner(1).run(specs);
    std::vector<sys::SimResults> second = sys::SweepRunner(1).run(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(specs[i].app);
        expectIdentical(first[i], second[i]);
    }
}

TEST(Sweep, MemoisesDuplicateSpecsWithinAndAcrossBatches)
{
    sys::SweepRunner runner(2);
    sys::RunSpec spec{"FIR", sys::baselineConfig(), kScale};

    std::vector<sys::SimResults> r1 = runner.run({spec, spec, spec});
    EXPECT_EQ(runner.stats().requested, 3u);
    EXPECT_EQ(runner.stats().executed, 1u);
    EXPECT_EQ(runner.stats().memoHits, 2u);
    expectIdentical(r1[0], r1[1]);
    expectIdentical(r1[0], r1[2]);

    runner.run({spec});
    EXPECT_EQ(runner.stats().executed, 1u);
    EXPECT_EQ(runner.stats().memoHits, 3u);

    runner.clearMemo();
    runner.run({spec});
    EXPECT_EQ(runner.stats().executed, 2u);
}

TEST(Sweep, DistinctConfigsAreNotConflated)
{
    sys::SweepRunner runner(1);
    sys::RunSpec base{"FIR", sys::baselineConfig(), kScale};
    sys::RunSpec fw{"FIR", sys::transFwConfig(), kScale};
    runner.run({base, fw});
    EXPECT_EQ(runner.stats().executed, 2u);
    EXPECT_EQ(runner.stats().memoHits, 0u);
}

TEST(Sweep, KeyCoversConfigFields)
{
    // key() must change whenever a field that affects simulation
    // changes — a stale key() silently serves wrong memo results. Spot
    // checks across every section of SystemConfig.
    const cfg::SystemConfig ref = sys::baselineConfig();
    const std::string refKey = ref.key();

    auto differs = [&refKey](cfg::SystemConfig c) {
        return c.key() != refKey;
    };

    cfg::SystemConfig c = ref;
    c.numGpus = ref.numGpus + 1;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.l2Tlb.entries *= 2;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.gmmuWalkers += 1;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.pwcEntries *= 2;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.peerLink.latency += 10;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.faultMode = cfg::FaultMode::UvmDriver;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.transFw.enabled = !ref.transFw.enabled;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.transFw.forwardThreshold += 0.25;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.oracle.infinitePwc = true;
    EXPECT_TRUE(differs(c));

    // Pod scale-out parameters: fabric topology shape and host-MMU
    // sharding both change the simulated machine.
    c = ref;
    c.peerTopology = ic::Topology::Mesh2D;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.peerTopology = ic::Topology::Mesh2D;
    cfg::SystemConfig c2 = c;
    c2.meshCols = 2;
    EXPECT_NE(c.key(), c2.key());

    c = ref;
    c.peerTopology = ic::Topology::Switch;
    c2 = c;
    c2.switchRadix = 4;
    EXPECT_NE(c.key(), c2.key());

    c = ref;
    c.hostShards = 4;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.transFw.ftReplicated = true;
    EXPECT_TRUE(differs(c));

    c = ref;
    c.seed += 1;
    EXPECT_TRUE(differs(c));

    // And sameness: an untouched copy maps to the same key.
    EXPECT_EQ(ref.key(), refKey);
}

TEST(Sweep, RunKeyFoldsScaleAndApp)
{
    sys::RunSpec a{"AES", sys::baselineConfig(), 0.25};
    sys::RunSpec b{"AES", sys::baselineConfig(), 0.5};
    sys::RunSpec c{"FIR", sys::baselineConfig(), 0.25};
    EXPECT_NE(sys::runKey(a), sys::runKey(b));
    EXPECT_NE(sys::runKey(a), sys::runKey(c));
    EXPECT_EQ(sys::runKey(a), sys::runKey(a));
}
