#include <gtest/gtest.h>

#include "transfw/transfw.hpp"

using namespace transfw;

namespace {

/** Small but non-trivial workload with heavy inter-GPU sharing. */
wl::SyntheticSpec
sharedSpec(const char *name = "shared")
{
    wl::SyntheticSpec spec;
    spec.name = name;
    spec.numCtas = 64;
    spec.memOpsPerCta = 40;
    spec.computePerOp = 2;
    spec.regions = {
        {.name = "hot", .pages = 64, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.3, .reuse = 2},
        {.name = "own", .pages = 256, .weight = 0.5, .reuse = 2},
    };
    return spec;
}

cfg::SystemConfig
smallConfig()
{
    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 4;
    config.cusPerGpu = 8;
    config.wavefrontSlotsPerCu = 2;
    return config;
}

} // namespace

TEST(System, DeterministicAcrossRuns)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    sys::SimResults a = sys::runWorkload(workload, config);
    sys::SimResults b = sys::runWorkload(workload, config);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.farFaults, b.farFaults);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.migrations, b.migrations);
}

TEST(System, SeedChangesExecution)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    sys::SimResults a = sys::runWorkload(workload, config);
    config.seed = 2;
    sys::SimResults b = sys::runWorkload(workload, config);
    EXPECT_NE(a.execTime, b.execTime);
}

TEST(System, SharingTrackerSeesAllGpus)
{
    wl::SyntheticWorkload workload(sharedSpec());
    sys::SimResults r = sys::runWorkload(workload, smallConfig());
    // The hot region is touched by all four GPUs.
    EXPECT_GT(r.sharingAccesses.bucket(4), 0u);
    // The partitioned region keeps single-GPU pages.
    EXPECT_GT(r.sharingAccesses.bucket(1), 0u);
    EXPECT_GT(r.sharedPageReads, 0u);
    EXPECT_GT(r.sharedPageWrites, 0u);
}

TEST(System, OracleNoFaultsEliminatesFaults)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    config.oracle.noLocalFaults = true;
    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_EQ(r.farFaults, 0u);
    EXPECT_EQ(r.migrations, 0u);
}

TEST(System, OraclesNeverSlowDown)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    sys::SimResults base = sys::runWorkload(workload, config);

    cfg::SystemConfig no_faults = config;
    no_faults.oracle.noLocalFaults = true;
    EXPECT_LT(sys::runWorkload(workload, no_faults).execTime,
              base.execTime);

    cfg::SystemConfig inf_walkers = config;
    inf_walkers.oracle.infiniteWalkers = true;
    EXPECT_LE(sys::runWorkload(workload, inf_walkers).execTime,
              base.execTime);

    cfg::SystemConfig free_migration = config;
    free_migration.oracle.zeroMigrationCost = true;
    EXPECT_LE(sys::runWorkload(workload, free_migration).execTime,
              base.execTime);
}

TEST(System, TransFwInvariantsHold)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    config.transFw.enabled = true;
    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_EQ(r.forwardSuccess + r.forwardFail, r.forwards);
    EXPECT_LE(r.shortCircuits, r.l2TlbMisses);
    EXPECT_LE(r.prtHits, r.prtLookups);
    EXPECT_LE(r.ftHits, r.ftLookups);
    EXPECT_LE(r.removedFromQueue, r.forwardSuccess);
}

TEST(System, SoftwareDriverMode)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    config.faultMode = cfg::FaultMode::UvmDriver;
    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_GT(r.driverBatches, 0u);
    EXPECT_GT(r.farFaults, 0u);
}

TEST(System, SoftwareSlowerThanHardware)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig hw = smallConfig();
    cfg::SystemConfig sw = smallConfig();
    sw.faultMode = cfg::FaultMode::UvmDriver;
    EXPECT_LT(sys::runWorkload(workload, hw).execTime,
              sys::runWorkload(workload, sw).execTime);
}

TEST(System, ReplicationHelpsReadSharing)
{
    wl::SyntheticSpec spec = sharedSpec("read-shared");
    spec.regions[0].writeFrac = 0.0; // pure read sharing
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig base = smallConfig();
    cfg::SystemConfig repl = smallConfig();
    repl.migrationPolicy = cfg::MigrationPolicy::ReadReplicate;
    sys::SimResults a = sys::runWorkload(workload, base);
    sys::SimResults b = sys::runWorkload(workload, repl);
    EXPECT_GT(b.replications, 0u);
    EXPECT_LT(b.execTime, a.execTime);
    EXPECT_LT(b.farFaults, a.farFaults);
}

TEST(System, RemoteMappingAvoidsMigrations)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    config.migrationPolicy = cfg::MigrationPolicy::RemoteMap;
    sys::SimResults r = sys::runWorkload(workload, config);
    EXPECT_GT(r.remoteMappings, 0u);
    cfg::SystemConfig base = smallConfig();
    sys::SimResults b = sys::runWorkload(workload, base);
    EXPECT_LT(r.migrations + r.counterMigrations, b.migrations);
}

TEST(System, LargePagesReduceTlbMisses)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig small_pages = smallConfig();
    cfg::SystemConfig large_pages = smallConfig();
    large_pages.pageShift = mem::kLargePageShift;
    sys::SimResults a = sys::runWorkload(workload, small_pages);
    sys::SimResults b = sys::runWorkload(workload, large_pages);
    EXPECT_LT(b.l2TlbMisses, a.l2TlbMisses);
}

TEST(System, FourLevelTableWalksShallower)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig five = smallConfig();
    cfg::SystemConfig four = smallConfig();
    four.pageTableLevels = 4;
    sys::SimResults a = sys::runWorkload(workload, five);
    sys::SimResults b = sys::runWorkload(workload, four);
    // Same request counts, fewer memory accesses per walk.
    EXPECT_LT(static_cast<double>(b.gmmuWalkMemAccesses) /
                  std::max<std::uint64_t>(1, b.l2TlbMisses),
              static_cast<double>(a.gmmuWalkMemAccesses) /
                  std::max<std::uint64_t>(1, a.l2TlbMisses) +
                  0.01);
}

TEST(System, BreakdownRoughlyCoversMeasuredLatency)
{
    wl::SyntheticWorkload workload(sharedSpec());
    sys::SimResults r = sys::runWorkload(workload, smallConfig());
    ASSERT_GT(r.l2TlbMisses, 0u);
    double component_avg = r.xlat.total() / r.l2TlbMisses;
    // Components should account for most of the measured latency
    // (parallel paths may double-count a little, gaps may miss a bit).
    EXPECT_GT(component_avg, 0.5 * r.avgXlatLatency);
    EXPECT_LT(component_avg, 1.5 * r.avgXlatLatency);
}

TEST(System, MemOpCountsExact)
{
    wl::SyntheticWorkload workload(sharedSpec());
    sys::SimResults r = sys::runWorkload(workload, smallConfig());
    EXPECT_EQ(r.memOps, 64u * 40u);
    EXPECT_EQ(r.pageAccesses, r.memOps); // one page per op here
    EXPECT_EQ(r.instructions, 64u * 40u * 3u);
}

TEST(System, RunTwiceIsFatal)
{
    wl::SyntheticWorkload workload(sharedSpec());
    cfg::SystemConfig config = smallConfig();
    sys::MultiGpuSystem system(config, workload);
    system.run();
    EXPECT_EXIT(system.run(), ::testing::ExitedWithCode(1), "once");
}
