#include <gtest/gtest.h>

#include "tlb/tlb.hpp"

using namespace transfw::tlb;

TEST(Tlb, HitMissAccounting)
{
    Tlb tlb("t", TlbConfig{32, 32, 1});
    EXPECT_EQ(tlb.lookup(1), nullptr);
    tlb.fill(1, TlbEntry{100, 0, true, false});
    const TlbEntry *entry = tlb.lookup(1);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->ppn, 100u);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

TEST(Tlb, ShootdownCountsOnlyPresent)
{
    Tlb tlb("t", TlbConfig{32, 32, 1});
    tlb.fill(5, TlbEntry{1, 0, true, false});
    EXPECT_TRUE(tlb.invalidate(5));
    EXPECT_FALSE(tlb.invalidate(5));
    EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(Tlb, CapacityEviction)
{
    Tlb tlb("t", TlbConfig{4, 4, 1});
    for (transfw::mem::Vpn vpn = 0; vpn < 8; ++vpn)
        tlb.fill(vpn, TlbEntry{vpn, 0, true, false});
    int present = 0;
    for (transfw::mem::Vpn vpn = 0; vpn < 8; ++vpn)
        present += tlb.probe(vpn) ? 1 : 0;
    EXPECT_EQ(present, 4);
}

TEST(Tlb, ProbeNeutral)
{
    Tlb tlb("t", TlbConfig{8, 8, 10});
    tlb.fill(3, TlbEntry{30, 1, false, true});
    std::uint64_t lookups_before = tlb.lookups();
    const TlbEntry *entry = tlb.probe(3);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->remote);
    EXPECT_FALSE(entry->writable);
    EXPECT_EQ(tlb.lookups(), lookups_before);
    EXPECT_EQ(tlb.lookupLatency(), 10u);
}

TEST(Tlb, Table2Configurations)
{
    // The three Table II TLBs construct with their exact shapes.
    Tlb l1("l1", TlbConfig{32, 32, 1});
    Tlb l2("l2", TlbConfig{512, 16, 10});
    Tlb host("host", TlbConfig{2048, 64, 5});
    EXPECT_EQ(l1.lookupLatency(), 1u);
    EXPECT_EQ(l2.lookupLatency(), 10u);
    EXPECT_EQ(host.lookupLatency(), 5u);
}
