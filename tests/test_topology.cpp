#include <gtest/gtest.h>

#include "interconnect/network.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;
using namespace transfw::ic;

TEST(Topology, AllToAllSingleHop)
{
    sim::EventQueue eq;
    Network net(eq, 4, LinkConfig{150, 256}, LinkConfig{150, 256});
    EXPECT_EQ(net.peerHops(0, 3), 1);
    EXPECT_EQ(net.peerLatency(0, 3), 150u);
    sim::Tick done = 0;
    net.sendPeer(0, 3, 256, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 151u);
}

TEST(Topology, RingHopCounts)
{
    sim::EventQueue eq;
    Network net(eq, 8, LinkConfig{}, LinkConfig{}, Topology::Ring);
    EXPECT_EQ(net.peerHops(0, 1), 1);
    EXPECT_EQ(net.peerHops(0, 4), 4); // opposite side
    EXPECT_EQ(net.peerHops(0, 7), 1); // wraparound
    EXPECT_EQ(net.peerHops(2, 6), 4);
    EXPECT_EQ(net.peerHops(3, 3), 0);
    EXPECT_EQ(net.peerLatency(0, 4), 4 * 150u);
}

TEST(Topology, RingRoutesThroughHops)
{
    sim::EventQueue eq;
    Network net(eq, 4, LinkConfig{100, 256}, LinkConfig{100, 256},
                Topology::Ring);
    sim::Tick direct = 0, two_hops = 0;
    net.sendPeerCtrl(0, 1, 32, [&] { direct = eq.now(); });
    eq.run();
    net.sendPeerCtrl(0, 2, 32, [&] { two_hops = eq.now() - direct; });
    eq.run();
    EXPECT_EQ(direct, 102u);
    EXPECT_EQ(two_hops, 2 * 102u);
}

TEST(Topology, RingHasNoChordLinks)
{
    sim::EventQueue eq;
    Network net(eq, 4, LinkConfig{}, LinkConfig{}, Topology::Ring);
    EXPECT_NO_THROW(net.peer(0, 1));
    EXPECT_NO_THROW(net.peer(0, 3)); // wraparound neighbour
    EXPECT_DEATH(net.peer(0, 2), "ring");
}

TEST(Topology, BulkTransferOccupiesEveryHop)
{
    sim::EventQueue eq;
    Network net(eq, 4, LinkConfig{100, 16}, LinkConfig{100, 16},
                Topology::Ring);
    // 1600 bytes = 100 cycles of serialization per hop.
    sim::Tick done = 0;
    net.sendPeer(0, 2, 1600, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 2 * (100u + 100u));
    // Both hop links carried the payload.
    EXPECT_EQ(net.peer(0, 1).bytesSent(), 1600u);
    EXPECT_EQ(net.peer(1, 2).bytesSent(), 1600u);
}

TEST(TopologySystem, RingSlowsRemoteTrafficButRuns)
{
    wl::SyntheticSpec spec;
    spec.name = "topo";
    spec.numCtas = 64;
    spec.memOpsPerCta = 40;
    spec.regions = {
        {.name = "hot", .pages = 64, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.5, .writeFrac = 0.3, .reuse = 2},
        {.name = "own", .pages = 256, .weight = 0.5, .reuse = 2},
    };
    wl::SyntheticWorkload workload(spec);

    cfg::SystemConfig mesh = sys::baselineConfig();
    mesh.cusPerGpu = 8;
    cfg::SystemConfig ring = mesh;
    ring.peerTopology = ic::Topology::Ring;

    sys::SimResults a = sys::runWorkload(workload, mesh);
    sys::SimResults b = sys::runWorkload(workload, ring);
    EXPECT_EQ(a.memOps, b.memOps);
    // Multi-hop migrations cost more on the ring.
    EXPECT_GE(b.execTime, a.execTime);

    // Trans-FW still helps on a ring.
    cfg::SystemConfig ring_fw = ring;
    ring_fw.transFw.enabled = true;
    sys::SimResults c = sys::runWorkload(workload, ring_fw);
    EXPECT_GT(sys::speedup(b, c), 1.0);
}
