#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "transfw/transfw.hpp"
#include "workload/trace.hpp"

using namespace transfw;

namespace {

/** Write @p text to a temp file and return its path. */
std::string
tempTrace(const std::string &text, const char *name)
{
    std::string path = std::string("/tmp/transfw_test_") + name;
    std::ofstream out(path);
    out << text;
    return path;
}

} // namespace

TEST(TraceWorkload, ParsesBasicTrace)
{
    std::string path = tempTrace("# comment\n"
                                 "trace-v1 2\n"
                                 "0 5 r100 w101\n"
                                 "1 3 r200\n"
                                 "0 2 w100\n",
                                 "basic");
    wl::TraceWorkload trace(path);
    EXPECT_EQ(trace.numCtas(), 2);
    EXPECT_EQ(trace.totalOps(), 3u);
    EXPECT_EQ(trace.footprintPages(), 3u);

    auto stream = trace.makeStream(0, 4, 1);
    wl::MemOp op;
    ASSERT_TRUE(stream->next(op));
    EXPECT_EQ(op.computeGap, 5u);
    EXPECT_EQ(op.numPages, 2);
    EXPECT_EQ(op.pages[0].vpn, 0x100u);
    EXPECT_FALSE(op.pages[0].write);
    EXPECT_EQ(op.pages[1].vpn, 0x101u);
    EXPECT_TRUE(op.pages[1].write);
    ASSERT_TRUE(stream->next(op));
    EXPECT_EQ(op.computeGap, 2u);
    EXPECT_FALSE(stream->next(op));
}

TEST(TraceWorkload, FirstToucherOwnsPage)
{
    std::string path = tempTrace("trace-v1 4\n"
                                 "0 0 r100\n"
                                 "3 0 r200\n"
                                 "3 0 r100\n", // second toucher
                                 "owner");
    wl::TraceWorkload trace(path);
    EXPECT_EQ(trace.initialOwner(0x100, 4), 0);
    EXPECT_EQ(trace.initialOwner(0x200, 4), 3);
    EXPECT_EQ(trace.initialOwner(0x999, 4), mem::kCpuDevice);
}

TEST(TraceWorkload, MalformedTracesAreFatal)
{
    EXPECT_EXIT(
        { wl::TraceWorkload t(tempTrace("nonsense\n", "bad1")); },
        ::testing::ExitedWithCode(1), "trace-v1");
    EXPECT_EXIT(
        {
            wl::TraceWorkload t(
                tempTrace("trace-v1 1\n0 5 x123\n", "bad2"));
        },
        ::testing::ExitedWithCode(1), "bad access");
    EXPECT_EXIT(
        {
            wl::TraceWorkload t(
                tempTrace("trace-v1 1\n7 5 r123\n", "bad3"));
        },
        ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT({ wl::TraceWorkload t("/nonexistent/file"); },
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceWorkload, RecordReplayRoundTrip)
{
    wl::SyntheticSpec spec;
    spec.name = "roundtrip";
    spec.numCtas = 8;
    spec.memOpsPerCta = 12;
    spec.computePerOp = 3;
    spec.regions = {{.name = "r", .pages = 64, .weight = 1.0,
                     .writeFrac = 0.4, .reuse = 2}};
    wl::SyntheticWorkload original(spec);

    std::string path = "/tmp/transfw_test_roundtrip.trace";
    wl::recordTrace(original, 4, 7, path);
    wl::TraceWorkload replay(path);

    EXPECT_EQ(replay.numCtas(), original.numCtas());
    EXPECT_EQ(replay.totalOps(), 8u * 12u);

    // Streams must match op-for-op.
    for (int cta : {0, 3, 7}) {
        auto a = original.makeStream(cta, 4, 7);
        auto b = replay.makeStream(cta, 4, 7);
        wl::MemOp x, y;
        while (true) {
            bool more_a = a->next(x);
            bool more_b = b->next(y);
            ASSERT_EQ(more_a, more_b);
            if (!more_a)
                break;
            ASSERT_EQ(x.numPages, y.numPages);
            EXPECT_EQ(x.computeGap, y.computeGap);
            for (int i = 0; i < x.numPages; ++i) {
                EXPECT_EQ(x.pages[static_cast<std::size_t>(i)].vpn,
                          y.pages[static_cast<std::size_t>(i)].vpn);
                EXPECT_EQ(x.pages[static_cast<std::size_t>(i)].write,
                          y.pages[static_cast<std::size_t>(i)].write);
            }
        }
    }
}

TEST(TraceWorkload, ReplayRunsInSystem)
{
    wl::SyntheticSpec spec;
    spec.name = "sysreplay";
    spec.numCtas = 8;
    spec.memOpsPerCta = 10;
    spec.regions = {{.name = "r", .pages = 32, .weight = 1.0,
                     .reuse = 2}};
    wl::SyntheticWorkload original(spec);
    std::string path = "/tmp/transfw_test_sysreplay.trace";
    wl::recordTrace(original, 2, 7, path);
    wl::TraceWorkload replay(path);

    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 2;
    config.cusPerGpu = 4;
    config.seed = 7;
    sys::SimResults r = sys::runWorkload(replay, config);
    EXPECT_EQ(r.memOps, 80u);
    EXPECT_GT(r.execTime, 0u);
}

TEST(Ablation, MechanismSwitchesIsolate)
{
    wl::SyntheticSpec spec;
    spec.name = "ablation";
    spec.numCtas = 64;
    spec.memOpsPerCta = 40;
    spec.regions = {
        {.name = "hot", .pages = 64, .pattern = wl::Pattern::Random,
         .shareDegree = 64, .weight = 0.6, .writeFrac = 0.3, .reuse = 2},
        {.name = "own", .pages = 256, .weight = 0.4, .reuse = 2},
    };
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig base = sys::baselineConfig();
    base.cusPerGpu = 8;

    cfg::SystemConfig prt_only = base;
    prt_only.transFw.enabled = true;
    prt_only.transFw.enableForwarding = false;
    sys::SimResults r1 = sys::runWorkload(workload, prt_only);
    EXPECT_GT(r1.shortCircuits, 0u);
    EXPECT_EQ(r1.forwards, 0u);

    cfg::SystemConfig ft_only = base;
    ft_only.transFw.enabled = true;
    ft_only.transFw.enableShortCircuit = false;
    sys::SimResults r2 = sys::runWorkload(workload, ft_only);
    EXPECT_EQ(r2.shortCircuits, 0u);
}
