#include <gtest/gtest.h>

#include <vector>

#include "sim/trace.hpp"
#include "transfw/transfw.hpp"

using namespace transfw;
namespace trace = transfw::sim::trace;

namespace {

/** RAII: capture trace output, restore state on destruction. */
struct TraceCapture
{
    std::vector<std::string> lines;

    TraceCapture()
    {
        trace::setSink([this](const std::string &line) {
            lines.push_back(line);
        });
    }
    ~TraceCapture()
    {
        trace::setSink(nullptr);
        trace::disableAll();
    }
};

} // namespace

TEST(TraceFacility, DisabledByDefault)
{
    TraceCapture capture;
    EXPECT_FALSE(trace::enabled("gmmu"));
    trace::enable("gmmu");
    EXPECT_TRUE(trace::enabled("gmmu"));
    EXPECT_FALSE(trace::enabled("host"));
}

TEST(TraceFacility, AllEnablesEverything)
{
    TraceCapture capture;
    trace::enable("all");
    EXPECT_TRUE(trace::enabled("gmmu"));
    EXPECT_TRUE(trace::enabled("whatever"));
}

TEST(TraceFacility, LogFormatsTickCategoryMessage)
{
    TraceCapture capture;
    trace::enable("test");
    trace::log(1234, "test", "hello");
    ASSERT_EQ(capture.lines.size(), 1u);
    EXPECT_NE(capture.lines[0].find("1234"), std::string::npos);
    EXPECT_NE(capture.lines[0].find("test: hello"), std::string::npos);
}

TEST(TraceFacility, MacroSkipsWhenDisabled)
{
    TraceCapture capture;
    sim::EventQueue eq;
    TFW_TRACE(eq, "off", "should not appear %d", 1);
    EXPECT_TRUE(capture.lines.empty());
    trace::enable("on");
    TFW_TRACE(eq, "on", "value=%d", 42);
    ASSERT_EQ(capture.lines.size(), 1u);
    EXPECT_NE(capture.lines[0].find("value=42"), std::string::npos);
}

TEST(TraceFacility, SinkMaySwapItselfMidInvocation)
{
    // Contract (sim/trace.hpp): log() pins the active sink before
    // calling it, so a sink may call setSink() — including replacing
    // itself — without pulling the function object out from under its
    // own frame.
    std::vector<std::string> first, second;
    trace::enable("swap");
    trace::setSink([&](const std::string &line) {
        first.push_back(line);
        trace::setSink([&second](const std::string &l) {
            second.push_back(l);
        });
    });
    trace::log(1, "swap", "a");
    trace::log(2, "swap", "b");
    trace::setSink(nullptr);
    trace::disableAll();
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_NE(first[0].find(": a"), std::string::npos);
    EXPECT_NE(second[0].find(": b"), std::string::npos);
}

TEST(TraceFacility, SinkMayDisableFromWithin)
{
    std::vector<std::string> lines;
    trace::enable("kill");
    trace::setSink([&](const std::string &line) {
        lines.push_back(line);
        trace::setSink(nullptr);
        trace::disableAll();
    });
    trace::log(1, "kill", "only");
    trace::log(2, "kill", "never");
    EXPECT_EQ(lines.size(), 1u);
    EXPECT_FALSE(trace::enabled("kill"));
}

TEST(TraceFacility, NoStateLeaksBetweenCaptures)
{
    // A destroyed capture must leave no categories enabled and no sink
    // installed: logging afterwards is a no-op, not a dangling call.
    {
        TraceCapture capture;
        trace::enable("leak");
        trace::log(1, "leak", "inside");
        EXPECT_EQ(capture.lines.size(), 1u);
    }
    EXPECT_FALSE(trace::enabled("leak"));
    trace::log(2, "leak", "outside"); // must not crash or deliver
    {
        TraceCapture capture;
        trace::enable("leak");
        trace::log(3, "leak", "again");
        EXPECT_EQ(capture.lines.size(), 1u);
    }
}

TEST(TraceFacility, SystemRunEmitsComponentRecords)
{
    TraceCapture capture;
    trace::enable("gmmu");
    trace::enable("host");
    trace::enable("migration");

    wl::SyntheticSpec spec;
    spec.name = "traced";
    spec.numCtas = 8;
    spec.memOpsPerCta = 10;
    spec.regions = {{.name = "hot", .pages = 16,
                     .pattern = wl::Pattern::Random, .shareDegree = 64,
                     .weight = 1.0, .writeFrac = 0.3, .reuse = 1}};
    wl::SyntheticWorkload workload(spec);
    cfg::SystemConfig config = sys::baselineConfig();
    config.numGpus = 2;
    config.cusPerGpu = 2;
    sys::runWorkload(workload, config);

    bool saw_gmmu = false, saw_host = false, saw_migration = false;
    for (const auto &line : capture.lines) {
        saw_gmmu |= line.find("gmmu:") != std::string::npos;
        saw_host |= line.find("host:") != std::string::npos;
        saw_migration |= line.find("migration:") != std::string::npos;
    }
    EXPECT_TRUE(saw_gmmu);
    EXPECT_TRUE(saw_host);
    EXPECT_TRUE(saw_migration);
}
