#include <gtest/gtest.h>

#include "helpers.hpp"
#include "interconnect/network.hpp"
#include "uvm/uvm_driver.hpp"

using namespace transfw;

namespace {

struct DriverHarness
{
    cfg::SystemConfig config;
    sim::EventQueue eq;
    sim::Rng rng{1};
    mem::PageTable central;
    ic::Network net;
    std::vector<std::unique_ptr<test::FakeGpu>> gpus;
    std::unique_ptr<core::FtCluster> ft;
    std::unique_ptr<uvm::MigrationEngine> engine;
    std::unique_ptr<uvm::UvmDriver> driver;

    std::vector<mmu::XlatPtr> resolved;
    std::vector<mmu::RemoteLookupPtr> forwarded;

    explicit DriverHarness(cfg::SystemConfig c = {})
        : config(std::move(c)), central(config.geometry()),
          net(eq, config.numGpus, config.hostLink, config.peerLink)
    {
        config.faultMode = cfg::FaultMode::UvmDriver;
        std::vector<mmu::GpuIface *> ifaces;
        for (int g = 0; g < config.numGpus; ++g) {
            gpus.push_back(std::make_unique<test::FakeGpu>(config, g));
            ifaces.push_back(gpus.back().get());
        }
        if (config.transFw.enabled)
            ft = std::make_unique<core::FtCluster>(config.transFw);
        engine = std::make_unique<uvm::MigrationEngine>(
            eq, config, central, ifaces, net, ft.get());
        driver = std::make_unique<uvm::UvmDriver>(eq, config, central,
                                                  *engine, ft.get(), rng);
        driver->onResolved = [this](mmu::XlatPtr r) {
            resolved.push_back(std::move(r));
        };
        driver->forwardToGpu = [this](mmu::RemoteLookupPtr rl) {
            forwarded.push_back(std::move(rl));
        };
    }

    void
    placeAt(mem::Vpn vpn, int owner)
    {
        mem::Ppn ppn =
            gpus[static_cast<std::size_t>(owner)]->frames().allocate();
        gpus[static_cast<std::size_t>(owner)]->localPageTable().map(
            vpn, mem::PageInfo{ppn, owner, 1u << owner, true, false});
        central.map(vpn,
                    mem::PageInfo{ppn, owner, 1u << owner, true, false});
        if (ft)
            ft->pageArrived(vpn, owner);
    }
};

} // namespace

TEST(UvmDriver, WindowFlushResolvesSmallBatch)
{
    DriverHarness h;
    h.placeAt(0x10, 1);
    auto req = test::makeReq(0x10, 0);
    req->tHostArrive = 0;
    h.driver->handleFault(req);
    h.eq.run();
    ASSERT_EQ(h.resolved.size(), 1u);
    EXPECT_EQ(h.driver->stats().batches, 1u);
    // The batch had to wait for the flush window.
    EXPECT_GE(h.eq.now(), h.config.driverBatchWindow);
}

TEST(UvmDriver, FullBatchSealsImmediately)
{
    cfg::SystemConfig config;
    config.driverBatchSize = 4;
    DriverHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 4; ++vpn)
        h.placeAt((vpn + 1) << 21, 1);
    for (mem::Vpn vpn = 0; vpn < 4; ++vpn)
        h.driver->handleFault(test::makeReq((vpn + 1) << 21, 0));
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 4u);
    EXPECT_EQ(h.driver->stats().batches, 1u);
    EXPECT_DOUBLE_EQ(h.driver->stats().batchSize.mean(), 4.0);
}

TEST(UvmDriver, BatchesSerialize)
{
    cfg::SystemConfig config;
    config.driverBatchSize = 2;
    DriverHarness h(config);
    for (mem::Vpn vpn = 0; vpn < 6; ++vpn)
        h.placeAt((vpn + 1) << 21, 1);
    for (mem::Vpn vpn = 0; vpn < 6; ++vpn)
        h.driver->handleFault(test::makeReq((vpn + 1) << 21, 0));
    h.eq.run();
    EXPECT_EQ(h.driver->stats().batches, 3u);
    EXPECT_EQ(h.resolved.size(), 6u);
    // Three serialized batches cost at least 3x the fixed overhead.
    EXPECT_GE(h.eq.now(), 3 * h.config.driverBatchFixedCost);
}

TEST(UvmDriver, SamePageFaultsCoalesce)
{
    cfg::SystemConfig config;
    config.driverBatchSize = 4;
    DriverHarness h(config);
    h.placeAt(0x30, 1);
    h.driver->handleFault(test::makeReq(0x30, 0));
    h.driver->handleFault(test::makeReq(0x30, 2));
    h.driver->handleFault(test::makeReq(0x30, 3));
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 3u);
    EXPECT_GE(h.driver->stats().coalesced, 2u);
}

TEST(UvmDriver, FtForwardingOnDriverFaults)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    config.driverBatchSize = 2;
    DriverHarness h(config);
    h.placeAt(0x40 << 9, 1);
    h.placeAt(0x41 << 9, 1);
    h.driver->handleFault(test::makeReq(0x40 << 9, 0));
    h.driver->handleFault(test::makeReq(0x41 << 9, 0));
    h.eq.run(200000);
    ASSERT_EQ(h.forwarded.size(), 2u);
    // Answer the remote lookups; both must resolve without a local walk.
    for (auto &rl : h.forwarded) {
        rl->success = true;
        rl->result = tlb::TlbEntry{1, 1, true, false};
        h.driver->remoteLookupDone(rl);
    }
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 2u);
    EXPECT_EQ(h.driver->stats().forwardSuccess, 2u);
    EXPECT_EQ(h.driver->stats().walks, 0u);
}

TEST(UvmDriver, FailedForwardFallsBackToSoftwareWalk)
{
    cfg::SystemConfig config;
    config.transFw.enabled = true;
    config.driverBatchSize = 1;
    DriverHarness h(config);
    h.placeAt(0x50 << 9, 1);
    h.driver->handleFault(test::makeReq(0x50 << 9, 0));
    h.eq.run(200000);
    ASSERT_EQ(h.forwarded.size(), 1u);
    h.forwarded[0]->success = false;
    h.driver->remoteLookupDone(h.forwarded[0]);
    h.eq.run();
    EXPECT_EQ(h.resolved.size(), 1u);
    EXPECT_EQ(h.driver->stats().walks, 1u);
}
