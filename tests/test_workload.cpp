#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "workload/apps.hpp"
#include "workload/ml_models.hpp"
#include "workload/synthetic.hpp"

using namespace transfw;
using namespace transfw::wl;

namespace {

SyntheticSpec
simpleSpec()
{
    SyntheticSpec spec;
    spec.name = "simple";
    spec.numCtas = 64;
    spec.memOpsPerCta = 50;
    spec.computePerOp = 3;
    spec.vaSpread = 512;
    spec.regions = {{.name = "data", .pages = 128, .weight = 1.0,
                     .writeFrac = 0.5, .reuse = 2}};
    return spec;
}

/** Drain a stream, returning all accesses. */
std::vector<PageAccess>
drain(const Workload &workload, int cta, int num_gpus,
      std::uint64_t seed = 7)
{
    std::vector<PageAccess> accesses;
    auto stream = workload.makeStream(cta, num_gpus, seed);
    MemOp op;
    while (stream->next(op)) {
        for (int i = 0; i < op.numPages; ++i)
            accesses.push_back(op.pages[static_cast<std::size_t>(i)]);
    }
    return accesses;
}

} // namespace

TEST(HomeGpu, ProportionalAssignment)
{
    EXPECT_EQ(homeGpu(0, 1024, 4), 0);
    EXPECT_EQ(homeGpu(255, 1024, 4), 0);
    EXPECT_EQ(homeGpu(256, 1024, 4), 1);
    EXPECT_EQ(homeGpu(1023, 1024, 4), 3);
}

TEST(SyntheticWorkload, StreamsAreDeterministic)
{
    SyntheticWorkload workload(simpleSpec());
    auto a = drain(workload, 5, 4);
    auto b = drain(workload, 5, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].vpn, b[i].vpn);
        EXPECT_EQ(a[i].write, b[i].write);
    }
    // Different CTAs produce different streams (different slice
    // offsets and/or independent write draws).
    auto c = drain(workload, 20, 4);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].vpn != c[i].vpn || a[i].write != c[i].write;
    EXPECT_TRUE(differs);
}

TEST(SyntheticWorkload, OpCountAndInstructions)
{
    SyntheticWorkload workload(simpleSpec());
    auto stream = workload.makeStream(0, 4, 1);
    MemOp op;
    int ops = 0;
    std::uint64_t instrs = 0;
    while (stream->next(op)) {
        ++ops;
        instrs += op.instructions;
        EXPECT_EQ(op.computeGap, 3u);
        EXPECT_GE(op.numPages, 1);
    }
    EXPECT_EQ(ops, 50);
    EXPECT_EQ(instrs, 50u * 4u);
}

TEST(SyntheticWorkload, AccessesStayInsideFootprint)
{
    SyntheticWorkload workload(simpleSpec());
    std::unordered_set<mem::Vpn> valid;
    workload.forEachPage([&](mem::Vpn vpn) { valid.insert(vpn); });
    EXPECT_EQ(valid.size(), workload.footprintPages());
    for (int cta = 0; cta < 64; cta += 7)
        for (const auto &access : drain(workload, cta, 4))
            EXPECT_TRUE(valid.count(access.vpn)) << access.vpn;
}

TEST(SyntheticWorkload, VaSpreadLayout)
{
    SyntheticSpec spec = simpleSpec();
    spec.vaSpread = 512;
    SyntheticWorkload workload(spec);
    EXPECT_EQ(workload.pageVpn(0, 1) - workload.pageVpn(0, 0), 512u);
}

TEST(SyntheticWorkload, PartitionedRegionsDoNotCrossGpus)
{
    SyntheticSpec spec = simpleSpec();
    spec.regions[0].shareDegree = 1;
    SyntheticWorkload workload(spec);
    // Accesses of CTAs homed on GPU 0 stay inside GPU 0's slice, whose
    // pages are exactly those initialOwner maps to GPU 0.
    for (const auto &access : drain(workload, 3, 4))
        EXPECT_EQ(workload.initialOwner(access.vpn, 4), 0);
    for (const auto &access : drain(workload, 60, 4))
        EXPECT_EQ(workload.initialOwner(access.vpn, 4), 3);
}

TEST(SyntheticWorkload, SharedRegionTouchedByAllGpus)
{
    SyntheticSpec spec = simpleSpec();
    spec.regions[0].shareDegree = 64;
    spec.regions[0].pattern = Pattern::Random;
    SyntheticWorkload workload(spec);
    std::unordered_map<mem::Vpn, unsigned> masks;
    for (int cta = 0; cta < 64; ++cta) {
        int gpu = homeGpu(cta, 64, 4);
        for (const auto &access : drain(workload, cta, 4))
            masks[access.vpn] |= 1u << gpu;
    }
    int shared_by_all = 0;
    for (const auto &[vpn, mask] : masks)
        shared_by_all += mask == 0xF ? 1 : 0;
    EXPECT_GT(shared_by_all, 0);
}

TEST(SyntheticWorkload, ShareDegreeTwoPairsGpus)
{
    SyntheticSpec spec = simpleSpec();
    spec.regions[0].shareDegree = 2;
    SyntheticWorkload workload(spec);
    // GPU0/GPU1 pages live in the first half; GPU2/3 in the second.
    for (const auto &access : drain(workload, 1, 4)) {
        int owner = workload.initialOwner(access.vpn, 4);
        EXPECT_TRUE(owner == 0 || owner == 1) << owner;
    }
    for (const auto &access : drain(workload, 50, 4)) {
        int owner = workload.initialOwner(access.vpn, 4);
        EXPECT_TRUE(owner == 2 || owner == 3) << owner;
    }
}

TEST(SyntheticWorkload, WriteFracRespected)
{
    SyntheticSpec spec = simpleSpec();
    spec.regions[0].writeFrac = 1.0;
    SyntheticWorkload workload(spec);
    for (const auto &access : drain(workload, 0, 4))
        EXPECT_TRUE(access.write);
    spec.regions[0].writeFrac = 0.0;
    SyntheticWorkload reads(spec);
    for (const auto &access : drain(reads, 0, 4))
        EXPECT_FALSE(access.write);
}

TEST(SyntheticWorkload, ActivePhasesGateRegions)
{
    SyntheticSpec spec = simpleSpec();
    spec.phases = 2;
    spec.regions[0].activePhases = {0};
    spec.regions.push_back({.name = "late", .pages = 64, .weight = 1.0,
                            .activePhases = {1}});
    SyntheticWorkload workload(spec);
    mem::Vpn late_base = workload.regionBase(1);
    auto stream = workload.makeStream(0, 4, 1);
    MemOp op;
    int index = 0;
    while (stream->next(op)) {
        bool in_late = op.pages[0].vpn >= late_base;
        if (index < 25)
            EXPECT_FALSE(in_late) << index;
        else
            EXPECT_TRUE(in_late) << index;
        ++index;
    }
}

TEST(SyntheticWorkload, RotatePerPhaseMovesSlices)
{
    SyntheticSpec spec = simpleSpec();
    spec.phases = 2;
    spec.regions[0].rotatePerPhase = true;
    SyntheticWorkload workload(spec);
    auto accesses = drain(workload, 0, 4); // home GPU 0
    // First-phase accesses hit GPU 0's slice; second phase, GPU 1's.
    EXPECT_EQ(workload.initialOwner(accesses.front().vpn, 4), 0);
    EXPECT_EQ(workload.initialOwner(accesses.back().vpn, 4), 1);
}

TEST(SyntheticWorkload, AlignAcrossGpusGivesSameOffsets)
{
    SyntheticSpec spec = simpleSpec();
    spec.regions[0].shareDegree = 64;
    spec.regions[0].alignAcrossGpus = true;
    SyntheticWorkload workload(spec);
    // CTA 0 (GPU 0) and CTA 16 (GPU 1) are the first CTAs of their
    // GPUs: aligned mode gives them identical page sequences.
    auto a = drain(workload, 0, 4);
    auto b = drain(workload, 16, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].vpn, b[i].vpn);
}

TEST(SyntheticWorkload, AlignSkewSeparatesGpus)
{
    SyntheticSpec spec = simpleSpec();
    spec.regions[0].shareDegree = 64;
    spec.regions[0].alignAcrossGpus = true;
    spec.regions[0].alignSkewPages = 16;
    SyntheticWorkload workload(spec);
    auto a = drain(workload, 0, 4);
    auto b = drain(workload, 16, 4);
    EXPECT_NE(a.front().vpn, b.front().vpn);
}

TEST(Apps, TableHasTenEntriesWithSpecs)
{
    EXPECT_EQ(appTable().size(), 10u);
    for (const auto &info : appTable()) {
        auto workload = makeApp(info.abbr);
        EXPECT_EQ(workload->name(), info.abbr);
        EXPECT_GT(workload->numCtas(), 0);
        EXPECT_GT(workload->footprintPages(), 0u);
        // Streams must terminate.
        auto accesses = drain(*workload, 0, 4);
        EXPECT_FALSE(accesses.empty());
    }
}

TEST(Apps, UnknownAppIsFatal)
{
    EXPECT_EXIT({ auto w = makeApp("NOPE"); (void)w; },
                ::testing::ExitedWithCode(1), "unknown application");
}

TEST(Apps, ScaleAdjustsWork)
{
    SyntheticSpec full = appSpec("MT", 1.0);
    SyntheticSpec half = appSpec("MT", 0.5);
    EXPECT_NEAR(half.memOpsPerCta, full.memOpsPerCta / 2, 1);
}

TEST(MlModels, LayerStructure)
{
    SyntheticSpec vgg = mlModelSpec("VGG16", 1.0 / 64, 1);
    EXPECT_EQ(vgg.regions.size(), 16u * 3u); // w/grad/act per layer
    EXPECT_EQ(vgg.phases, 32);
    SyntheticSpec resnet = mlModelSpec("ResNet18", 1.0 / 64, 2);
    EXPECT_EQ(resnet.regions.size(), 18u * 3u);
    EXPECT_EQ(resnet.phases, 2 * 2 * 18);
    // Weight regions are shared by every GPU; activations are private.
    EXPECT_GE(vgg.regions[0].shareDegree, 4);
    EXPECT_EQ(vgg.regions[2].shareDegree, 1);
}

TEST(MlModels, StreamsRunAndStayInFootprint)
{
    auto model = makeMlModel("ResNet18", 1.0 / 64, 1);
    std::unordered_set<mem::Vpn> valid;
    model->forEachPage([&](mem::Vpn vpn) { valid.insert(vpn); });
    for (const auto &access : drain(*model, 0, 4))
        EXPECT_TRUE(valid.count(access.vpn));
}
